package vdbms

import (
	"fmt"
	"sync"
	"testing"
)

func qoeFixture(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine()
	metrics := []string{"loss", "delay", "jitter", "throughput"}
	for i := 0; i < 40; i++ {
		kind := "violation"
		if i%5 == 4 {
			kind = "recovered"
		}
		rec := QoERecord{
			Session:    i % 6,
			Video:      fmt.Sprintf("v%03d", i%4),
			Site:       "srv-" + string(rune('a'+i%3)),
			Metric:     metrics[i%len(metrics)],
			Kind:       kind,
			Counter:    i / 6,
			Min:        float64(i),
			Max:        float64(i) * 2,
			Avg:        float64(i) * 1.5,
			Peak:       i%7 == 0,
			TimeMillis: int64(i) * 500,
		}
		if err := e.AppendQoE(rec); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func TestQoEQueryByMetricAndKind(t *testing.T) {
	e := qoeFixture(t)
	recs, q, err := e.QoESQL("SELECT * FROM qoe WHERE metric = 'loss' AND kind = 'violation'")
	if err != nil {
		t.Fatal(err)
	}
	if q.Table != "qoe" {
		t.Fatalf("table = %q", q.Table)
	}
	if len(recs) == 0 {
		t.Fatal("no records matched")
	}
	for _, r := range recs {
		if r.Metric != "loss" || r.Kind != "violation" {
			t.Fatalf("predicate leaked: %+v", r)
		}
	}
	// i%4==0 gives metric loss; of those, i%5==4 never coincides below 40
	// except i=24 (kind recovered): metrics at i=0,4,8,...,36 -> 10 loss
	// records, i=4,24 are recovered -> 8 violations.
	if len(recs) != 8 {
		t.Fatalf("got %d loss violations, want 8", len(recs))
	}
}

func TestQoEQueryTimeRangeUsesIndexConsistently(t *testing.T) {
	e := qoeFixture(t)
	// time is in seconds; records are at 0, 0.5, 1.0, ... 19.5s.
	indexed, _, err := e.QoESQL("SELECT * FROM qoe WHERE time >= 5 AND time <= 10")
	if err != nil {
		t.Fatal(err)
	}
	scan, _, err := e.QoESQL("SELECT * FROM qoe WHERE NOT (time < 5 OR time > 10)")
	if err != nil {
		t.Fatal(err)
	}
	if len(indexed) == 0 || len(indexed) != len(scan) {
		t.Fatalf("index path %d records vs scan path %d", len(indexed), len(scan))
	}
	for i := range indexed {
		if indexed[i] != scan[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, indexed[i], scan[i])
		}
	}
	for _, r := range indexed {
		if r.TimeMillis < 5000 || r.TimeMillis > 10000 {
			t.Fatalf("record outside time range: %+v", r)
		}
	}
}

func TestQoEQueryOrderingAndLimit(t *testing.T) {
	e := qoeFixture(t)
	recs, _, err := e.QoESQL("SELECT * FROM qoe WHERE peak = 1 LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("LIMIT ignored: %d records", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].TimeMillis < recs[i-1].TimeMillis {
			t.Fatalf("not time-ordered: %+v before %+v", recs[i-1], recs[i])
		}
	}
	for _, r := range recs {
		if !r.Peak {
			t.Fatalf("peak predicate leaked: %+v", r)
		}
	}
}

func TestQoEUnknownFieldRejected(t *testing.T) {
	e := qoeFixture(t)
	if _, _, err := e.QoESQL("SELECT * FROM qoe WHERE title = 'x'"); err == nil {
		t.Fatal("qoe table accepted a videos field")
	}
	if _, _, err := e.QoESQL("SELECT * FROM qoe WHERE tags CONTAINS 'x'"); err == nil {
		t.Fatal("qoe table accepted tags CONTAINS")
	}
	if _, err := e.ExecuteQoE(&Query{Table: "videos"}); err == nil {
		t.Fatal("ExecuteQoE accepted the videos table")
	}
}

// TestQoEConcurrentAppendQuery drives guardian-style appends against
// concurrent experiment-style queries; run under -race this is the
// snapshot-consistency gate for the qoe table. Every query must see a
// prefix-consistent record count (monotone, never exceeding appends so
// far) and records must never be torn.
func TestQoEConcurrentAppendQuery(t *testing.T) {
	e := NewEngine()
	const writers, perWriter = 4, 100
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := QoERecord{
					Session:    w,
					Video:      fmt.Sprintf("v%03d", w),
					Metric:     "loss",
					Kind:       "violation",
					Counter:    i,
					Min:        float64(i),
					Max:        float64(i),
					Avg:        float64(i),
					TimeMillis: int64(i),
				}
				if err := e.AppendQoE(rec); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		recs, _, err := e.QoESQL("SELECT * FROM qoe WHERE metric = 'loss'")
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if r.Min != r.Max || r.Metric != "loss" {
				t.Fatalf("torn record: %+v", r)
			}
		}
		select {
		case <-done:
			recs, _, err := e.QoESQL("SELECT * FROM qoe")
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != writers*perWriter {
				t.Fatalf("final count %d, want %d", len(recs), writers*perWriter)
			}
			if e.QoECount() != writers*perWriter {
				t.Fatalf("QoECount = %d", e.QoECount())
			}
			return
		default:
		}
	}
}
