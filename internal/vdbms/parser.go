package vdbms

import (
	"fmt"
	"strconv"
	"strings"

	"quasaq/internal/qos"
)

// Query is a parsed QoS-aware query: the conventional content part plus the
// QoS requirement QuaSAQ appends (the paper's "QoS-enhanced queries", §3.2).
//
// Grammar (case-insensitive keywords):
//
//	SELECT * FROM videos
//	  [WHERE <predicate>]
//	  [SIMILAR TO '<video title or id>']
//	  [LIMIT <n>]
//	  [WITH QOS ( <qos-term> {, <qos-term>} )]
//
// Predicates combine comparisons over id, title, duration, fps and
// tags CONTAINS '<tag>' with AND/OR/NOT and parentheses (for FROM qoe the
// field set is the persisted QoE schema — see qoe.go). QoS terms are
// AND-composed; app-level:
//
//	resolution >= 320x240 | resolution <= 'VCD' | depth >= 16 |
//	fps >= 20 | fps <= 30 | format IN (MPEG1, MPEG2) | security >= standard
//
// and network-level, each bounded only in its canonical direction (delay
// and jitter in milliseconds, loss as a fraction, throughput in bytes/s):
//
//	delay <= 40 | jitter <= 10 | loss <= 0.05 | throughput >= 500000
//
// Duplicate terms and contradictory ranges (min > max) are positioned
// parse errors, not last-wins.
type Query struct {
	Table     string
	Where     Expr // nil = match all
	SimilarTo string
	Limit     int // 0 = unlimited
	QoS       qos.Requirement
	HasQoS    bool
}

// Expr is a boolean predicate over a catalog row.
type Expr interface {
	Eval(row *Row) bool
	String() string
}

// Row is the evaluation view of one catalog record.
type Row struct {
	ID       uint32
	Title    string
	Duration float64 // seconds
	FPS      float64
	Tags     []string
}

type andExpr struct{ l, r Expr }
type orExpr struct{ l, r Expr }
type notExpr struct{ e Expr }

func (e andExpr) Eval(r *Row) bool { return e.l.Eval(r) && e.r.Eval(r) }
func (e orExpr) Eval(r *Row) bool  { return e.l.Eval(r) || e.r.Eval(r) }
func (e notExpr) Eval(r *Row) bool { return !e.e.Eval(r) }
func (e andExpr) String() string   { return "(" + e.l.String() + " AND " + e.r.String() + ")" }
func (e orExpr) String() string    { return "(" + e.l.String() + " OR " + e.r.String() + ")" }
func (e notExpr) String() string   { return "(NOT " + e.e.String() + ")" }

type cmpExpr struct {
	field string // id, title, duration, fps
	op    string
	str   string
	num   float64
	isNum bool
}

func (e cmpExpr) String() string {
	if e.isNum {
		return fmt.Sprintf("%s %s %g", e.field, e.op, e.num)
	}
	return fmt.Sprintf("%s %s '%s'", e.field, e.op, e.str)
}

func (e cmpExpr) Eval(r *Row) bool {
	if e.isNum {
		var v float64
		switch e.field {
		case "id":
			v = float64(r.ID)
		case "duration":
			v = r.Duration
		case "fps":
			v = r.FPS
		default:
			return false
		}
		switch e.op {
		case "=":
			return v == e.num
		case "!=":
			return v != e.num
		case "<":
			return v < e.num
		case "<=":
			return v <= e.num
		case ">":
			return v > e.num
		case ">=":
			return v >= e.num
		}
		return false
	}
	if e.field != "title" {
		return false
	}
	switch e.op {
	case "=":
		return r.Title == e.str
	case "!=":
		return r.Title != e.str
	}
	return false
}

type containsExpr struct{ tag string }

func (e containsExpr) String() string { return fmt.Sprintf("tags CONTAINS '%s'", e.tag) }
func (e containsExpr) Eval(r *Row) bool {
	for _, t := range r.Tags {
		if strings.EqualFold(t, e.tag) {
			return true
		}
	}
	return false
}

type parser struct {
	toks  []token
	pos   int
	table string // lowercased FROM table; selects the field whitelist
}

// tableFields returns the string- and numeric-typed fields queryable for a
// table. The videos catalog exposes the paper's content fields; the qoe
// table exposes the persisted violation-record schema (see qoe.go). Unknown
// tables fall back to the videos whitelist so the parser error stays at the
// execution layer, matching historical behavior.
func tableFields(table string) (str, num map[string]bool) {
	if table == "qoe" {
		return map[string]bool{"video": true, "site": true, "metric": true, "kind": true},
			map[string]bool{"session": true, "counter": true, "min": true, "max": true,
				"avg": true, "peak": true, "time": true}
	}
	return map[string]bool{"title": true},
		map[string]bool{"id": true, "duration": true, "fps": true}
}

// Parse parses a QoS-aware query.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("vdbms: trailing input at %q", p.cur().text)
	}
	return q, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || strings.EqualFold(t.text, text))
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	return token{}, fmt.Errorf("vdbms: expected %q, found %q at %d", text, p.cur().text, p.cur().pos)
}

func (p *parser) parseQuery() (*Query, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokOp, "*"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	q := &Query{Table: tbl.text}
	p.table = strings.ToLower(tbl.text)
	if p.accept(tokKeyword, "WHERE") {
		q.Where, err = p.parseOr()
		if err != nil {
			return nil, err
		}
	}
	if p.accept(tokKeyword, "SIMILAR") {
		if _, err := p.expect(tokKeyword, "TO"); err != nil {
			return nil, err
		}
		ref, err := p.expect(tokString, "")
		if err != nil {
			return nil, err
		}
		q.SimilarTo = ref.text
	}
	if p.accept(tokKeyword, "LIMIT") {
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		lim, err := strconv.Atoi(n.text)
		if err != nil || lim <= 0 {
			return nil, fmt.Errorf("vdbms: bad LIMIT %q", n.text)
		}
		q.Limit = lim
	}
	if p.accept(tokKeyword, "WITH") {
		if _, err := p.expect(tokKeyword, "QOS"); err != nil {
			return nil, err
		}
		req, err := p.parseQoS()
		if err != nil {
			return nil, err
		}
		q.QoS = req
		q.HasQoS = true
	}
	return q, nil
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = orExpr{l, r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = andExpr{l, r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return notExpr{e}, nil
	}
	if p.accept(tokOp, "(") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	field, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	name := strings.ToLower(field.text)
	strFields, numFields := tableFields(p.table)
	if name == "tags" && p.table != "qoe" {
		if _, err := p.expect(tokKeyword, "CONTAINS"); err != nil {
			return nil, err
		}
		tag, err := p.expect(tokString, "")
		if err != nil {
			return nil, err
		}
		return containsExpr{tag: tag.text}, nil
	}
	if !strFields[name] && !numFields[name] {
		return nil, fmt.Errorf("vdbms: unknown field %q at %d", field.text, field.pos)
	}
	if p.cur().kind != tokOp {
		return nil, fmt.Errorf("vdbms: expected comparison operator after %q", field.text)
	}
	op := p.next().text
	if op == "<>" {
		op = "!="
	}
	switch op {
	case "=", "!=", "<", "<=", ">", ">=":
	default:
		return nil, fmt.Errorf("vdbms: bad operator %q", op)
	}
	val := p.next()
	switch val.kind {
	case tokString:
		if !strFields[name] {
			return nil, fmt.Errorf("vdbms: field %q needs a numeric value", name)
		}
		if op != "=" && op != "!=" {
			return nil, fmt.Errorf("vdbms: operator %q invalid for strings", op)
		}
		return cmpExpr{field: name, op: op, str: val.text}, nil
	case tokNumber:
		if strFields[name] {
			return nil, fmt.Errorf("vdbms: field %q needs a string value", name)
		}
		f, err := strconv.ParseFloat(val.text, 64)
		if err != nil {
			return nil, fmt.Errorf("vdbms: bad number %q", val.text)
		}
		return cmpExpr{field: name, op: op, num: f, isNum: true}, nil
	default:
		return nil, fmt.Errorf("vdbms: expected value after %q %s", field.text, op)
	}
}
