// Package simtime provides the discrete-event simulation engine on which
// every QuaSAQ substrate runs.
//
// The paper's evaluation was carried out on three physical Solaris servers;
// this reproduction replaces wall-clock execution with a deterministic
// virtual clock so that thousand-second streaming experiments (Figures 5-7)
// complete in milliseconds and are exactly repeatable under a fixed seed.
//
// A Simulator owns a virtual clock and a priority queue of events. Events
// scheduled for the same instant fire in scheduling order (FIFO), which keeps
// causally-ordered handlers deterministic.
package simtime

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a virtual timestamp measured from the simulation epoch (t = 0).
// It reuses time.Duration so that callers can write 500*time.Millisecond.
type Time = time.Duration

// Event is a scheduled callback. It is returned by the Schedule methods so
// that callers may cancel it before it fires.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	index  int // heap index, -1 once removed
	fired  bool
	cancel bool
}

// At reports the virtual time the event is (or was) due to fire.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether Cancel was called before the event fired.
func (e *Event) Cancelled() bool { return e.cancel }

// Fired reports whether the event's callback has run.
func (e *Event) Fired() bool { return e.fired }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Simulator is a single-threaded discrete-event executor. It is not safe for
// concurrent use; QuaSAQ models concurrency with events, not goroutines, so
// that runs are reproducible.
type Simulator struct {
	now    Time
	seq    uint64
	queue  eventQueue
	nEvent uint64 // total events executed (for overhead accounting)
}

// NewSimulator returns a simulator whose clock reads zero.
func NewSimulator() *Simulator {
	s := &Simulator{}
	heap.Init(&s.queue)
	return s
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Executed returns the number of events executed so far.
func (s *Simulator) Executed() uint64 { return s.nEvent }

// Pending returns the number of events still queued (including cancelled
// events that have not yet been reaped).
func (s *Simulator) Pending() int { return s.queue.Len() }

// Schedule runs fn after delay. A negative delay is an error in the caller;
// it panics because it would silently reorder causality.
func (s *Simulator) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("simtime: negative delay %v", delay))
	}
	return s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt runs fn at absolute virtual time at, which must not precede the
// current clock.
func (s *Simulator) ScheduleAt(at Time, fn func()) *Event {
	if at < s.now {
		panic(fmt.Sprintf("simtime: schedule at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("simtime: nil event func")
	}
	s.seq++
	e := &Event{at: at, seq: s.seq, fn: fn}
	heap.Push(&s.queue, e)
	return e
}

// Cancel removes the event from the queue if it has not fired. It is safe to
// cancel an event twice or to cancel one that already fired (a no-op).
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.fired || e.cancel {
		return
	}
	e.cancel = true
	if e.index >= 0 {
		heap.Remove(&s.queue, e.index)
	}
}

// Step executes the single earliest event, advancing the clock to its
// timestamp. It reports false when no events remain.
func (s *Simulator) Step() bool {
	for s.queue.Len() > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.cancel {
			continue
		}
		s.now = e.at
		e.fired = true
		s.nEvent++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline and then advances the
// clock to the deadline. Events scheduled beyond the deadline stay queued.
func (s *Simulator) RunUntil(deadline Time) {
	for s.queue.Len() > 0 {
		e := s.queue[0]
		if e.at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Every schedules fn at now+interval, then repeatedly every interval, until
// fn returns false. It returns a handle to the next pending occurrence's
// canceller.
func (s *Simulator) Every(interval Time, fn func() bool) *Ticker {
	if interval <= 0 {
		panic(fmt.Sprintf("simtime: non-positive ticker interval %v", interval))
	}
	t := &Ticker{sim: s, interval: interval, fn: fn}
	t.arm()
	return t
}

// Ticker is a repeating event created by Every.
type Ticker struct {
	sim      *Simulator
	interval Time
	fn       func() bool
	next     *Event
	stopped  bool
}

func (t *Ticker) arm() {
	t.next = t.sim.Schedule(t.interval, func() {
		if t.stopped {
			return
		}
		if t.fn() {
			t.arm()
		} else {
			t.stopped = true
		}
	})
}

// Stop cancels any pending occurrence. The ticker never fires again.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.sim.Cancel(t.next)
}

// Seconds converts a float seconds count to virtual Time, saturating rather
// than overflowing for absurd inputs.
func Seconds(s float64) Time {
	if math.IsInf(s, 1) || s > math.MaxInt64/float64(time.Second) {
		return math.MaxInt64
	}
	return Time(s * float64(time.Second))
}

// ToSeconds converts a virtual Time to float seconds.
func ToSeconds(t Time) float64 { return float64(t) / float64(time.Second) }
