package simtime

import "testing"

// Replica i's stream must not move when replica j consumes more randomness:
// forked streams are fully independent once created.
func TestForkStreamIndependence(t *testing.T) {
	draw := func(r *Rand, n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = r.Float64()
		}
		return out
	}

	// Reference: fork i and j, draw 10 from i.
	a := NewRand(42)
	fi := a.Fork()
	fj := a.Fork()
	_ = fj
	want := draw(fi, 10)

	// Same construction, but j drains 10k draws before i draws anything.
	b := NewRand(42)
	gi := b.Fork()
	gj := b.Fork()
	draw(gj, 10000)
	got := draw(gi, 10)

	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("draw %d: fork stream perturbed by sibling: %v != %v", k, got[k], want[k])
		}
	}
}

func TestForkStreamsDiffer(t *testing.T) {
	r := NewRand(7)
	f1, f2 := r.Fork(), r.Fork()
	same := 0
	for i := 0; i < 16; i++ {
		if f1.Float64() == f2.Float64() {
			same++
		}
	}
	if same == 16 {
		t.Fatal("sibling forks produced identical streams")
	}
}

func TestDeriveSeedStableAndKeyed(t *testing.T) {
	if DeriveSeed(11, "fig6") != DeriveSeed(11, "fig6") {
		t.Fatal("DeriveSeed not deterministic")
	}
	if DeriveSeed(11, "fig6") == DeriveSeed(11, "fig7") {
		t.Fatal("DeriveSeed ignores the key")
	}
	if DeriveSeed(11, "fig6") == DeriveSeed(12, "fig6") {
		t.Fatal("DeriveSeed ignores the base seed")
	}
	if DeriveSeed(11, "fig6") < 0 || ReplicaSeed(11, 3) < 0 {
		t.Fatal("derived seeds should be non-negative")
	}
}

// Cell seeds depend on (base, replica) only — never on the position of the
// point in the sweep — so reordering points cannot change any cell's world.
func TestReplicaSeedStableUnderPointReordering(t *testing.T) {
	type cell struct{ point, replica int }
	order1 := []cell{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}, {2, 1}}
	order2 := []cell{{2, 1}, {1, 0}, {0, 1}, {2, 0}, {1, 1}, {0, 0}}
	seeds1 := map[cell]int64{}
	for _, c := range order1 {
		seeds1[c] = ReplicaSeed(29, c.replica)
	}
	for _, c := range order2 {
		if got := ReplicaSeed(29, c.replica); got != seeds1[c] {
			t.Fatalf("cell %+v seed changed under reordering: %d != %d", c, got, seeds1[c])
		}
	}
}

func TestReplicaSeedZeroIsBase(t *testing.T) {
	if ReplicaSeed(1234, 0) != 1234 {
		t.Fatal("replica 0 must run the base seed so -replicas 1 matches a serial run")
	}
}

func TestReplicaSeedsDistinct(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 64; i++ {
		s := ReplicaSeed(11, i)
		if j, dup := seen[s]; dup {
			t.Fatalf("replicas %d and %d share seed %d", j, i, s)
		}
		seen[s] = i
		// Streams must actually differ, not just the seed values.
		if i > 0 && NewRand(s).Float64() == NewRand(11).Float64() {
			t.Fatalf("replica %d stream collides with base stream", i)
		}
	}
}
