package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	s := NewSimulator()
	var order []int
	s.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	s.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	s.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("clock = %v, want 30ms", s.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := NewSimulator()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Second, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	s := NewSimulator()
	fired := false
	e := s.Schedule(time.Second, func() { fired = true })
	s.Cancel(e)
	s.Cancel(e) // double cancel is a no-op
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	s := NewSimulator()
	e := s.Schedule(time.Millisecond, func() {})
	s.Run()
	s.Cancel(e)
	if e.Cancelled() {
		t.Fatal("fired event reported cancelled")
	}
	if !e.Fired() {
		t.Fatal("Fired() = false after run")
	}
}

func TestRunUntil(t *testing.T) {
	s := NewSimulator()
	var fired []int
	s.Schedule(time.Second, func() { fired = append(fired, 1) })
	s.Schedule(3*time.Second, func() { fired = append(fired, 2) })
	s.RunUntil(2 * time.Second)
	if len(fired) != 1 {
		t.Fatalf("fired = %v, want only first event", fired)
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("clock = %v, want 2s", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	s.RunUntil(5 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want both events", fired)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	s := NewSimulator()
	var times []Time
	s.Schedule(time.Second, func() {
		times = append(times, s.Now())
		s.Schedule(time.Second, func() { times = append(times, s.Now()) })
	})
	s.Run()
	if len(times) != 2 || times[1] != 2*time.Second {
		t.Fatalf("nested scheduling broken: %v", times)
	}
}

func TestScheduleInPastPanics(t *testing.T) {
	s := NewSimulator()
	s.Schedule(time.Second, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("ScheduleAt in the past did not panic")
		}
	}()
	s.ScheduleAt(500*time.Millisecond, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	s := NewSimulator()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	s.Schedule(-time.Second, func() {})
}

func TestTicker(t *testing.T) {
	s := NewSimulator()
	n := 0
	s.Every(100*time.Millisecond, func() bool {
		n++
		return n < 5
	})
	s.Run()
	if n != 5 {
		t.Fatalf("ticker fired %d times, want 5", n)
	}
	if s.Now() != 500*time.Millisecond {
		t.Fatalf("clock = %v, want 500ms", s.Now())
	}
}

func TestTickerStop(t *testing.T) {
	s := NewSimulator()
	n := 0
	tk := s.Every(100*time.Millisecond, func() bool { n++; return true })
	s.Schedule(250*time.Millisecond, tk.Stop)
	s.RunUntil(time.Second)
	if n != 2 {
		t.Fatalf("stopped ticker fired %d times, want 2", n)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []float64 {
		r := NewRand(42)
		out := make([]float64, 20)
		for i := range out {
			out[i] = r.Exp(1.0)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rand stream not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestForkIndependence(t *testing.T) {
	r := NewRand(7)
	f := r.Fork()
	// Drawing from the fork must not perturb the parent relative to a
	// parent that forked but never used the child.
	r2 := NewRand(7)
	f2 := r2.Fork()
	_ = f2
	for i := 0; i < 100; i++ {
		f.Float64()
	}
	for i := 0; i < 10; i++ {
		if r.Float64() != r2.Float64() {
			t.Fatal("fork draws perturbed parent stream")
		}
	}
}

func TestPickDistribution(t *testing.T) {
	r := NewRand(1)
	counts := [3]int{}
	w := []float64{1, 2, 7}
	for i := 0; i < 10000; i++ {
		counts[r.Pick(w)]++
	}
	if counts[2] < counts[1] || counts[1] < counts[0] {
		t.Fatalf("weighted pick ordering wrong: %v", counts)
	}
	if counts[2] < 6000 || counts[2] > 8000 {
		t.Fatalf("heavy weight picked %d/10000, want ~7000", counts[2])
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRand(3)
	z := r.Zipf(1.0, 10)
	counts := make([]int, 10)
	for i := 0; i < 20000; i++ {
		counts[z()]++
	}
	if counts[0] <= counts[5] {
		t.Fatalf("zipf not skewed: %v", counts)
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	if err := quick.Check(func(ms uint16) bool {
		s := float64(ms) / 1000
		got := ToSeconds(Seconds(s))
		return got > s-1e-6 && got < s+1e-6
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSecondsSaturates(t *testing.T) {
	if Seconds(1e300) <= 0 {
		t.Fatal("Seconds overflowed instead of saturating")
	}
}

func TestExpDurMean(t *testing.T) {
	r := NewRand(11)
	var sum Time
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.ExpDur(time.Second)
	}
	mean := sum / n
	if mean < 950*time.Millisecond || mean > 1050*time.Millisecond {
		t.Fatalf("ExpDur mean = %v, want ~1s", mean)
	}
}
