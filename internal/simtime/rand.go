package simtime

import (
	"math"
	"math/rand"
)

// Rand is a deterministic random source used across the simulation. It wraps
// math/rand with the distributions the workload and media models need, so
// that every stochastic choice in an experiment flows from one seed.
type Rand struct {
	r *rand.Rand
}

// NewRand returns a deterministic source for the given seed.
func NewRand(seed int64) *Rand {
	return &Rand{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent deterministic stream, so subsystems can draw
// without perturbing each other's sequences.
func (r *Rand) Fork() *Rand {
	return NewRand(r.r.Int63())
}

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap bijective
// mixer whose outputs pass statistical independence tests even for
// consecutive inputs. Seed derivation uses it so that nearby (seed, replica)
// cells land in unrelated regions of the generator's state space.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DeriveSeed deterministically derives an independent seed from a base seed
// and a string discriminator (a scenario or point key). The result depends
// only on the inputs — never on call order or enumeration position — so a
// sweep that reorders its points still hands every cell the same seed.
func DeriveSeed(base int64, key string) int64 {
	h := splitmix64(uint64(base))
	for i := 0; i < len(key); i++ {
		h = splitmix64(h ^ uint64(key[i]))
	}
	return int64(h &^ (1 << 63)) // non-negative, friendlier in logs/CSV
}

// ReplicaSeed derives the workload seed for replica i of a sweep. Replica 0
// runs the base seed itself, so a single-replica sweep reproduces a plain
// serial run byte-for-byte; higher replicas get mixed, mutually independent
// seeds. The derivation is per-replica, not per-point: every point of a
// sweep sees the identical query stream within one replica, which is what
// makes cross-system comparisons (Figures 6/7) paired rather than noisy.
func ReplicaSeed(base int64, replica int) int64 {
	if replica == 0 {
		return base
	}
	return int64(splitmix64(splitmix64(uint64(base))^uint64(replica)) &^ (1 << 63))
}

// Float64 returns a uniform sample in [0,1).
func (r *Rand) Float64() float64 { return r.r.Float64() }

// Intn returns a uniform sample in [0,n).
func (r *Rand) Intn(n int) int { return r.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (r *Rand) Int63() int64 { return r.r.Int63() }

// Uniform returns a uniform sample in [lo,hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.r.Float64()
}

// Exp returns an exponential sample with the given mean (not rate).
func (r *Rand) Exp(mean float64) float64 {
	return r.r.ExpFloat64() * mean
}

// ExpDur returns an exponential virtual-time sample with the given mean.
func (r *Rand) ExpDur(mean Time) Time {
	return Time(r.r.ExpFloat64() * float64(mean))
}

// Normal returns a Gaussian sample.
func (r *Rand) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.r.NormFloat64()
}

// LogNormal returns exp(N(mu, sigma)), used for VBR frame-size dispersion.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Perm returns a random permutation of [0,n).
func (r *Rand) Perm(n int) []int { return r.r.Perm(n) }

// Pick returns a uniformly chosen index weighted by w. The weights must be
// non-negative and not all zero.
func (r *Rand) Pick(w []float64) int {
	var sum float64
	for _, x := range w {
		sum += x
	}
	if sum <= 0 {
		panic("simtime: Pick with non-positive total weight")
	}
	u := r.r.Float64() * sum
	for i, x := range w {
		u -= x
		if u < 0 {
			return i
		}
	}
	return len(w) - 1
}

// Zipf returns a sampler over [0,n) with skew s >= 1 (s=1 ~ classic Zipf).
// Video access popularity in the extended workloads uses this; the paper's
// own generator is uniform, which callers get with s=0 handled by Intn.
func (r *Rand) Zipf(s float64, n int) func() int {
	if n <= 0 {
		panic("simtime: Zipf over empty domain")
	}
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), s)
	}
	return func() int { return r.Pick(weights) }
}
