package mpeg

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"

	"quasaq/internal/media"
	"quasaq/internal/qos"
	"quasaq/internal/simtime"
)

func testVideo() *media.Video {
	return &media.Video{
		ID:        7,
		Title:     "clip",
		Duration:  simtime.Seconds(5),
		FrameRate: 24,
		GOP:       media.DefaultGOP(),
		Seed:      99,
	}
}

func testVariant() media.Variant {
	return media.NewVariant(qos.AppQoS{
		Resolution: qos.ResQCIF, ColorDepth: 8, FrameRate: 24, Format: qos.FormatMPEG1,
	})
}

func encodeClip(t *testing.T, maxFrames int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, testVideo(), testVariant(), maxFrames); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

func TestEncodeParseRoundTrip(t *testing.T) {
	v, va := testVideo(), testVariant()
	data := encodeClip(t, 0)
	p, err := NewParser(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("parser: %v", err)
	}
	info := p.Info()
	if info.Quality != va.Quality {
		t.Fatalf("quality round trip: got %v want %v", info.Quality, va.Quality)
	}
	if info.FrameCount != v.Frames() {
		t.Fatalf("frame count = %d, want %d", info.FrameCount, v.Frames())
	}
	if info.GOPLen != 15 {
		t.Fatalf("gop len = %d", info.GOPLen)
	}
	n := 0
	for {
		f, err := p.NextFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("frame %d: %v", n, err)
		}
		if f.Index != n {
			t.Fatalf("index = %d, want %d", f.Index, n)
		}
		if f.Kind != v.GOP.Kind(n) {
			t.Fatalf("frame %d kind = %v, want %v", n, f.Kind, v.GOP.Kind(n))
		}
		if f.Size() != va.FrameSize(v, n) {
			t.Fatalf("frame %d size = %d, want %d", n, f.Size(), va.FrameSize(v, n))
		}
		n++
	}
	if n != v.Frames() {
		t.Fatalf("parsed %d frames, want %d", n, v.Frames())
	}
}

func TestEncodeMaxFrames(t *testing.T) {
	data := encodeClip(t, 10)
	counts, err := CountFrames(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	total := counts[media.FrameI] + counts[media.FrameP] + counts[media.FrameB]
	if total != 10 {
		t.Fatalf("frames = %d, want 10", total)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a := encodeClip(t, 30)
	b := encodeClip(t, 30)
	if !bytes.Equal(a, b) {
		t.Fatal("encoder is not deterministic")
	}
}

func TestParserRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("shrt"),
		[]byte("XXXX" + strings.Repeat("\x00", 20)),
		append([]byte("QSQM\x02"), make([]byte, 20)...), // bad version
	}
	for i, data := range cases {
		if _, err := NewParser(bytes.NewReader(data)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestParserRejectsTruncatedPayload(t *testing.T) {
	data := encodeClip(t, 5)
	p, err := NewParser(bytes.NewReader(data[:len(data)-40]))
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, err := p.NextFrame()
		if err == io.EOF {
			t.Fatal("truncated stream parsed to clean EOF")
		}
		if err != nil {
			return // expected corruption error
		}
	}
}

func TestGOPHeadersTracked(t *testing.T) {
	data := encodeClip(t, 31) // spans three GOPs
	p, err := NewParser(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 31; i++ {
		if _, err := p.NextFrame(); err != nil {
			t.Fatal(err)
		}
		if want := i / 15; p.GOPIndex() != want {
			t.Fatalf("frame %d: gop = %d, want %d", i, p.GOPIndex(), want)
		}
	}
}

func TestFilterDropAllB(t *testing.T) {
	data := encodeClip(t, 45)
	var out bytes.Buffer
	st, err := Filter(bytes.NewReader(data), &out, func(k media.FrameKind, _ int) bool {
		return k != media.FrameB
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.FramesIn != 45 || st.FramesOut != 15 { // 5 non-B per GOP x 3
		t.Fatalf("frames in/out = %d/%d, want 45/15", st.FramesIn, st.FramesOut)
	}
	counts, err := CountFrames(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("filtered stream corrupt: %v", err)
	}
	if counts[media.FrameB] != 0 {
		t.Fatalf("B frames survived filter: %v", counts)
	}
	if counts[media.FrameI] != 3 || counts[media.FrameP] != 12 {
		t.Fatalf("unexpected kept counts: %v", counts)
	}
	if st.DropRatio() <= 0 || st.DropRatio() >= 1 {
		t.Fatalf("drop ratio = %v", st.DropRatio())
	}
}

func TestFilterHalfB(t *testing.T) {
	data := encodeClip(t, 30)
	var out bytes.Buffer
	bSeen := 0
	st, err := Filter(bytes.NewReader(data), &out, func(k media.FrameKind, _ int) bool {
		if k != media.FrameB {
			return true
		}
		bSeen++
		return bSeen%2 == 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.FramesOut != 20 { // 10 non-B + 10 of 20 B
		t.Fatalf("frames out = %d, want 20", st.FramesOut)
	}
}

func TestFilterKeepAllIsLossless(t *testing.T) {
	data := encodeClip(t, 30)
	var out bytes.Buffer
	st, err := Filter(bytes.NewReader(data), &out, func(media.FrameKind, int) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if st.DroppedBytes != 0 {
		t.Fatalf("dropped %d bytes with keep-all", st.DroppedBytes)
	}
	if !bytes.Equal(data, out.Bytes()) {
		t.Fatal("keep-all filter is not the identity")
	}
}

func TestFilterBytesConserved(t *testing.T) {
	data := encodeClip(t, 45)
	var out bytes.Buffer
	st, err := Filter(bytes.NewReader(data), &out, func(k media.FrameKind, i int) bool {
		return i%3 != 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.BytesIn != st.BytesOut+st.DroppedBytes {
		t.Fatalf("byte accounting broken: in=%d out=%d dropped=%d", st.BytesIn, st.BytesOut, st.DroppedBytes)
	}
}

func TestEncoderCloseIdempotent(t *testing.T) {
	var buf bytes.Buffer
	e, err := NewEncoder(&buf, testVideo(), testVariant(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if err := e.EncodeNext(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal("second close errored")
	}
	if err := e.EncodeNext(); err != io.EOF {
		t.Fatalf("encode after close = %v, want EOF", err)
	}
}

func TestNewEncoderRejectsInvalidQuality(t *testing.T) {
	var buf bytes.Buffer
	bad := media.Variant{Quality: qos.AppQoS{}}
	if _, err := NewEncoder(&buf, testVideo(), bad, 1); err == nil {
		t.Fatal("invalid variant accepted")
	}
}

func TestParserNeverPanicsOnCorruption(t *testing.T) {
	// Property: arbitrary single-byte corruption of a valid stream may
	// produce errors but never panics and never infinite-loops.
	data := encodeClip(t, 45)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		corrupt := append([]byte(nil), data...)
		for k := 0; k < 1+trial%4; k++ {
			corrupt[rng.Intn(len(corrupt))] ^= byte(1 + rng.Intn(255))
		}
		p, err := NewParser(bytes.NewReader(corrupt))
		if err != nil {
			continue // header corruption rejected: fine
		}
		for frames := 0; frames < 10000; frames++ {
			if _, err := p.NextFrame(); err != nil {
				break // EOF or corruption error: fine
			}
		}
	}
}

func TestParserNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		blob := make([]byte, rng.Intn(4096))
		rng.Read(blob)
		p, err := NewParser(bytes.NewReader(blob))
		if err != nil {
			continue
		}
		for frames := 0; frames < 10000; frames++ {
			if _, err := p.NextFrame(); err != nil {
				break
			}
		}
	}
}
