package mpeg

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"quasaq/internal/media"
	"quasaq/internal/qos"
	"quasaq/internal/simtime"
)

// fuzzSeeds builds the seed corpus: well-formed clips at a few quality
// points plus systematic mutations of one of them (truncations and
// bit-flips at layer boundaries), so coverage starts inside every parser
// state rather than at random garbage.
func fuzzSeeds(f *testing.F) [][]byte {
	f.Helper()
	video := &media.Video{
		ID:        1,
		Title:     "fuzz-clip",
		Duration:  simtime.Seconds(2),
		FrameRate: 24,
		GOP:       media.DefaultGOP(),
		Seed:      7,
	}
	var seeds [][]byte
	for _, q := range []qos.AppQoS{
		{Resolution: qos.ResQCIF, ColorDepth: 8, FrameRate: 24, Format: qos.FormatMPEG1},
		{Resolution: qos.ResCIF, ColorDepth: 16, FrameRate: 24, Format: qos.FormatMPEG1},
		{Resolution: qos.ResVCD, ColorDepth: 24, FrameRate: 24, Format: qos.FormatMPEG1, Security: qos.SecurityStrong},
	} {
		var buf bytes.Buffer
		if err := Encode(&buf, video, media.NewVariant(q), 0); err != nil {
			f.Fatalf("encode seed: %v", err)
		}
		seeds = append(seeds, buf.Bytes())
	}
	base := seeds[0]
	// Truncations: mid-header, mid-GOP-header, mid-picture-header, mid-payload.
	for _, cut := range []int{3, 11, 19, 24, 31, len(base) / 2, len(base) - 3} {
		if cut < len(base) {
			seeds = append(seeds, base[:cut])
		}
	}
	// Bit flips across the early structure (header, first GOP, first picture).
	for pos := 0; pos < 40 && pos < len(base); pos += 5 {
		mut := bytes.Clone(base)
		mut[pos] ^= 0x80
		seeds = append(seeds, mut)
	}
	// A hostile picture size field: claims ~4 GiB of payload.
	huge := bytes.Clone(base)
	copy(huge[27:31], []byte{0xff, 0xff, 0xff, 0xff})
	seeds = append(seeds, huge)
	return seeds
}

// FuzzParser feeds arbitrary bytes through the full sequence/GOP/picture
// walk. The parser must be total: every input either parses or fails with
// ErrCorrupt — no panics, no unbounded allocation, and honest accounting
// (frames returned are self-consistent with the GOP index).
func FuzzParser(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := NewParser(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("NewParser error outside taxonomy: %v", err)
			}
			return
		}
		if p.Info().GOPLen <= 0 {
			t.Fatalf("parser accepted GOP length %d", p.Info().GOPLen)
		}
		frames := 0
		var terminal error
		for {
			fr, err := p.NextFrame()
			if err != nil {
				if errors.Is(err, io.EOF) || errors.Is(err, ErrCorrupt) {
					terminal = err
					break
				}
				t.Fatalf("NextFrame error outside taxonomy: %v", err)
			}
			if fr.Index != frames {
				t.Fatalf("frame index %d out of order (want %d)", fr.Index, frames)
			}
			if fr.Kind > media.FrameB {
				t.Fatalf("parser returned invalid frame kind %d", fr.Kind)
			}
			if fr.Size() > maxFrameSize {
				t.Fatalf("frame of %d bytes exceeds the parser's own limit", fr.Size())
			}
			if p.GOPIndex() < 0 {
				t.Fatalf("negative GOP index %d", p.GOPIndex())
			}
			frames++
		}
		// A clean sequence end latches the parser: reads past it stay EOF.
		if errors.Is(terminal, io.EOF) {
			if _, err := p.NextFrame(); !errors.Is(err, io.EOF) {
				t.Fatalf("read past sequence end: err = %v, want io.EOF", err)
			}
		}
	})
}
