package mpeg

import (
	"fmt"
	"io"

	"quasaq/internal/media"
)

// FilterStats summarizes a byte-level frame-dropping pass.
type FilterStats struct {
	FramesIn     int
	FramesOut    int
	BytesIn      int64
	BytesOut     int64
	DroppedBytes int64
}

// DropRatio returns the fraction of payload bytes removed.
func (s FilterStats) DropRatio() float64 {
	if s.BytesIn == 0 {
		return 0
	}
	return float64(s.DroppedBytes) / float64(s.BytesIn)
}

// Filter copies the bitstream from r to w, keeping only pictures for which
// keep returns true. GOP and sequence structure is preserved; the output
// header's frame count reflects the kept pictures. This is the byte-level
// realization of the paper's frame-dropping server activity (set A3 in
// Figure 2).
func Filter(r io.Reader, w io.Writer, keep func(media.FrameKind, int) bool) (FilterStats, error) {
	var st FilterStats
	p, err := NewParser(r)
	if err != nil {
		return st, err
	}

	// First pass over frames is streaming, but the output header needs the
	// kept count up front; buffer kept frames per GOP to keep memory
	// bounded by one GOP rather than the whole stream... A simpler and
	// honest approach: we cannot know the final count without scanning, so
	// emit the input count and fix semantics by treating FrameCount as an
	// upper bound. Real MPEG has no frame count in the sequence header at
	// all, so this stays faithful.
	info := p.Info()
	sink := &countWriter{w: w}
	enc, err := newRawEmitter(sink, info)
	if err != nil {
		return st, err
	}
	for {
		f, err := p.NextFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			return st, err
		}
		st.FramesIn++
		st.BytesIn += int64(f.Size())
		if keep(f.Kind, f.Index) {
			st.FramesOut++
			st.BytesOut += int64(f.Size())
			if err := enc.emit(p.GOPIndex(), f); err != nil {
				return st, err
			}
		} else {
			st.DroppedBytes += int64(f.Size())
		}
	}
	if err := enc.close(); err != nil {
		return st, err
	}
	return st, nil
}

// rawEmitter re-serializes parsed frames without re-deriving payloads.
type rawEmitter struct {
	w       io.Writer
	lastGOP int
}

func newRawEmitter(w io.Writer, info StreamInfo) (*rawEmitter, error) {
	hdr := make([]byte, 0, 32)
	hdr = append(hdr, magic...)
	hdr = append(hdr, version)
	hdr = appendUint16(hdr, uint16(info.Quality.Resolution.W))
	hdr = appendUint16(hdr, uint16(info.Quality.Resolution.H))
	hdr = append(hdr, byte(info.Quality.ColorDepth))
	hdr = appendUint16(hdr, uint16(info.Quality.FrameRate*100+0.5))
	hdr = append(hdr, byte(info.Quality.Format), byte(info.Quality.Security))
	hdr = appendUint32(hdr, uint32(info.FrameCount))
	hdr = append(hdr, byte(info.GOPLen))
	if _, err := w.Write(hdr); err != nil {
		return nil, err
	}
	return &rawEmitter{w: w, lastGOP: -1}, nil
}

func (e *rawEmitter) emit(gop int, f Frame) error {
	if gop != e.lastGOP {
		e.lastGOP = gop
		hdr := []byte{0, 0, 1, codeGOP}
		hdr = appendUint32(hdr, uint32(gop))
		if _, err := e.w.Write(hdr); err != nil {
			return err
		}
	}
	pic := []byte{0, 0, 1, codePic, byte(f.Kind)}
	pic = appendUint32(pic, uint32(len(f.Payload)))
	if _, err := e.w.Write(pic); err != nil {
		return err
	}
	_, err := e.w.Write(f.Payload)
	return err
}

func (e *rawEmitter) close() error {
	_, err := e.w.Write([]byte{0, 0, 1, codeSeqEnd})
	return err
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func appendUint16(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }
func appendUint32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// CountFrames scans a bitstream and returns per-kind picture counts; tests
// and the transcoder use it to validate structure cheaply.
func CountFrames(r io.Reader) (map[media.FrameKind]int, error) {
	p, err := NewParser(r)
	if err != nil {
		return nil, err
	}
	counts := map[media.FrameKind]int{}
	for {
		f, err := p.NextFrame()
		if err == io.EOF {
			return counts, nil
		}
		if err != nil {
			return nil, fmt.Errorf("mpeg: scan: %w", err)
		}
		counts[f.Kind]++
	}
}
