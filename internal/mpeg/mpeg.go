// Package mpeg implements a toy MPEG-1-like bitstream with the three layers
// the paper's streamer cares about: sequence, group-of-pictures, and
// picture. The original prototype "decodes the layering information of MPEG
// stream files" to packetize and to drop frames (§4); this reproduction does
// the same against a simplified but real byte format, so the transport,
// frame-dropping and encryption activities operate on actual data.
//
// The format is not interoperable with real MPEG-1; it preserves exactly the
// structure QuaSAQ exploits: typed pictures (I/P/B) with per-picture sizes,
// grouped into fixed-pattern GOPs, under a sequence header carrying the
// application QoS of the coded material.
package mpeg

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"quasaq/internal/media"
	"quasaq/internal/qos"
)

// Start codes, loosely mirroring MPEG-1's 0x000001xx convention.
const (
	magic      = "QSQM" // sequence header magic
	version    = 1
	codeGOP    = 0xB8 // GOP header start code suffix (as in MPEG-1)
	codePic    = 0x00 // picture start code suffix
	codeSeqEnd = 0xB7 // sequence end code suffix
)

// ErrCorrupt reports a malformed bitstream.
var ErrCorrupt = errors.New("mpeg: corrupt bitstream")

// maxFrameSize bounds a single picture's coded payload (16 MiB). Real
// frames in this format stay far below it; anything larger is a corrupt or
// hostile size field, and rejecting it keeps the parser's allocation
// proportional to honest input rather than to a 4 GiB header claim.
const maxFrameSize = 1 << 24

// StreamInfo is the decoded sequence-layer header.
type StreamInfo struct {
	Quality    qos.AppQoS
	FrameCount int
	GOPLen     int
}

// Frame is one decoded picture.
type Frame struct {
	Index   int
	Kind    media.FrameKind
	Payload []byte
}

// Size returns the coded payload size in bytes.
func (f Frame) Size() int { return len(f.Payload) }

// Encoder writes a toy bitstream for a (video, variant) pair. Payload bytes
// are deterministic pseudo-noise derived from the video seed, so encoders
// are reproducible and encrypted output is non-trivial.
type Encoder struct {
	w     *bufio.Writer
	video *media.Video
	va    media.Variant
	next  int
	limit int
	done  bool
}

// NewEncoder prepares an encoder emitting at most maxFrames pictures
// (maxFrames <= 0 means the whole video) and writes the sequence header.
func NewEncoder(w io.Writer, v *media.Video, va media.Variant, maxFrames int) (*Encoder, error) {
	if err := va.Quality.Validate(); err != nil {
		return nil, fmt.Errorf("mpeg: %w", err)
	}
	total := v.Frames()
	if maxFrames > 0 && maxFrames < total {
		total = maxFrames
	}
	e := &Encoder{w: bufio.NewWriter(w), video: v, va: va, limit: total}
	if err := e.writeHeader(); err != nil {
		return nil, err
	}
	return e, nil
}

func (e *Encoder) writeHeader() error {
	q := e.va.Quality
	hdr := make([]byte, 0, 32)
	hdr = append(hdr, magic...)
	hdr = append(hdr, version)
	hdr = binary.BigEndian.AppendUint16(hdr, uint16(q.Resolution.W))
	hdr = binary.BigEndian.AppendUint16(hdr, uint16(q.Resolution.H))
	hdr = append(hdr, byte(q.ColorDepth))
	hdr = binary.BigEndian.AppendUint16(hdr, uint16(math.Round(q.FrameRate*100)))
	hdr = append(hdr, byte(q.Format), byte(q.Security))
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(e.limit))
	hdr = append(hdr, byte(e.video.GOP.Len()))
	_, err := e.w.Write(hdr)
	return err
}

// EncodeNext emits the next picture (and a GOP header when one begins). It
// returns io.EOF after the last frame has been written.
func (e *Encoder) EncodeNext() error {
	if e.next >= e.limit {
		return io.EOF
	}
	i := e.next
	e.next++
	if i%e.video.GOP.Len() == 0 {
		gop := []byte{0, 0, 1, codeGOP}
		gop = binary.BigEndian.AppendUint32(gop, uint32(i/e.video.GOP.Len()))
		if _, err := e.w.Write(gop); err != nil {
			return err
		}
	}
	size := e.va.FrameSize(e.video, i)
	pic := []byte{0, 0, 1, codePic, byte(e.video.GOP.Kind(i))}
	pic = binary.BigEndian.AppendUint32(pic, uint32(size))
	if _, err := e.w.Write(pic); err != nil {
		return err
	}
	return writeNoise(e.w, e.video.Seed^uint64(i)*0x9E3779B97F4A7C15, size)
}

// Close writes the sequence end code and flushes. Further EncodeNext calls
// fail.
func (e *Encoder) Close() error {
	if e.done {
		return nil
	}
	e.done = true
	e.next = e.limit
	if _, err := e.w.Write([]byte{0, 0, 1, codeSeqEnd}); err != nil {
		return err
	}
	return e.w.Flush()
}

// Encode writes the complete bitstream for (v, va), up to maxFrames frames.
func Encode(w io.Writer, v *media.Video, va media.Variant, maxFrames int) error {
	e, err := NewEncoder(w, v, va, maxFrames)
	if err != nil {
		return err
	}
	for {
		if err := e.EncodeNext(); err == io.EOF {
			break
		} else if err != nil {
			return err
		}
	}
	return e.Close()
}

// writeNoise emits n deterministic pseudo-random bytes.
func writeNoise(w io.Writer, seed uint64, n int) error {
	var buf [4096]byte
	x := seed | 1
	for n > 0 {
		chunk := n
		if chunk > len(buf) {
			chunk = len(buf)
		}
		for i := 0; i < chunk; i += 8 {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			binary.LittleEndian.PutUint64(buf[i&^7:], x)
		}
		if _, err := w.Write(buf[:chunk]); err != nil {
			return err
		}
		n -= chunk
	}
	return nil
}

// Parser reads a toy bitstream, exposing the layering information.
type Parser struct {
	r     *bufio.Reader
	info  StreamInfo
	index int
	gop   int
	done  bool
}

// NewParser reads and validates the sequence header.
func NewParser(r io.Reader) (*Parser, error) {
	p := &Parser{r: bufio.NewReader(r)}
	hdr := make([]byte, 18)
	if _, err := io.ReadFull(p.r, hdr); err != nil {
		return nil, fmt.Errorf("%w: short sequence header: %v", ErrCorrupt, err)
	}
	if string(hdr[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, hdr[:4])
	}
	if hdr[4] != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, hdr[4])
	}
	p.info = StreamInfo{
		Quality: qos.AppQoS{
			Resolution: qos.Resolution{
				W: int(binary.BigEndian.Uint16(hdr[5:7])),
				H: int(binary.BigEndian.Uint16(hdr[7:9])),
			},
			ColorDepth: int(hdr[9]),
			FrameRate:  float64(binary.BigEndian.Uint16(hdr[10:12])) / 100,
			Format:     qos.Format(hdr[12]),
			Security:   qos.SecurityLevel(hdr[13]),
		},
		FrameCount: int(binary.BigEndian.Uint32(hdr[14:18])),
	}
	gopLen, err := p.r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: missing GOP length", ErrCorrupt)
	}
	p.info.GOPLen = int(gopLen)
	if err := p.info.Quality.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if p.info.GOPLen <= 0 {
		return nil, fmt.Errorf("%w: GOP length 0", ErrCorrupt)
	}
	return p, nil
}

// Info returns the sequence header contents.
func (p *Parser) Info() StreamInfo { return p.info }

// GOPIndex returns the index of the GOP the most recent frame belonged to.
func (p *Parser) GOPIndex() int { return p.gop }

// NextFrame returns the next picture, skipping GOP headers. It returns
// io.EOF at the sequence end code.
func (p *Parser) NextFrame() (Frame, error) {
	if p.done {
		return Frame{}, io.EOF
	}
	for {
		var start [4]byte
		if _, err := io.ReadFull(p.r, start[:]); err != nil {
			return Frame{}, fmt.Errorf("%w: missing start code: %v", ErrCorrupt, err)
		}
		if start[0] != 0 || start[1] != 0 || start[2] != 1 {
			return Frame{}, fmt.Errorf("%w: bad start code % x", ErrCorrupt, start)
		}
		switch start[3] {
		case codeSeqEnd:
			p.done = true
			return Frame{}, io.EOF
		case codeGOP:
			var idx [4]byte
			if _, err := io.ReadFull(p.r, idx[:]); err != nil {
				return Frame{}, fmt.Errorf("%w: short GOP header", ErrCorrupt)
			}
			p.gop = int(binary.BigEndian.Uint32(idx[:]))
		case codePic:
			var ph [5]byte
			if _, err := io.ReadFull(p.r, ph[:]); err != nil {
				return Frame{}, fmt.Errorf("%w: short picture header", ErrCorrupt)
			}
			kind := media.FrameKind(ph[0])
			if kind > media.FrameB {
				return Frame{}, fmt.Errorf("%w: bad picture type %d", ErrCorrupt, ph[0])
			}
			size := int(binary.BigEndian.Uint32(ph[1:5]))
			if size > maxFrameSize {
				return Frame{}, fmt.Errorf("%w: picture size %d exceeds %d-byte limit", ErrCorrupt, size, maxFrameSize)
			}
			payload := make([]byte, size)
			if _, err := io.ReadFull(p.r, payload); err != nil {
				return Frame{}, fmt.Errorf("%w: truncated picture payload", ErrCorrupt)
			}
			f := Frame{Index: p.index, Kind: kind, Payload: payload}
			p.index++
			return f, nil
		default:
			return Frame{}, fmt.Errorf("%w: unknown start code %#x", ErrCorrupt, start[3])
		}
	}
}
