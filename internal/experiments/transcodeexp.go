package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"quasaq/internal/core"
	"quasaq/internal/media"
	"quasaq/internal/replication"
	"quasaq/internal/runner"
	"quasaq/internal/simtime"
	"quasaq/internal/stats"
	"quasaq/internal/transcode"
	"quasaq/internal/workload"
)

// The transcode experiment sweeps worker-class mixes of the elastic
// transcoding farm against the inline-transcoding baseline and reads off
// the Pareto trade: dollars spent on the fleet versus the p99 startup delay
// and deadline-miss rate the streams observe. The corpus is stored
// single-copy — only the original quality exists — so nearly every
// admitted delivery carries a transcode stage, and every farm variant has
// to convert GOPs just-in-time ahead of each stream's play point.

// TranscodeVariant is one point of the sweep: a farm configuration, or the
// flat baseline (nil Farm) where every plan transcodes inline on the
// delivery site's reserved CPU.
type TranscodeVariant struct {
	Key   string
	Label string
	Farm  *transcode.FarmConfig // nil = no farm (inline baseline)
}

// TranscodeConfig parameterizes the sweep.
type TranscodeConfig struct {
	Seed     int64
	BaseLoad float64      // queries per second
	Horizon  simtime.Time // arrival window
	Variants []TranscodeVariant
}

// DefaultTranscodeConfig compares the flat baseline, a neutral farm (the
// golden-equivalence control), a fast/expensive fleet, a slow/cheap fleet,
// and a mixed fleet under the autoscaler — ≥2 heterogeneous mixes plus the
// two ends of the cost axis.
func DefaultTranscodeConfig() TranscodeConfig {
	fast := transcode.WorkerClass{
		Name:           "fast",
		Speed:          4,
		Startup:        simtime.Seconds(0.25),
		DollarsPerHour: 2.4,
		MaxWorkers:     6,
	}
	econ := transcode.WorkerClass{
		Name:           "econ",
		Speed:          0.5,
		Startup:        simtime.Seconds(3),
		DollarsPerHour: 0.3,
		MaxWorkers:     6,
	}
	scale := transcode.AutoscaleConfig{Interval: simtime.Seconds(2)}
	one := func(c transcode.WorkerClass) *transcode.FarmConfig {
		c.MinWorkers = 1
		return &transcode.FarmConfig{Classes: []transcode.WorkerClass{c}, Autoscale: scale}
	}
	mixedEcon := econ
	mixedEcon.MinWorkers = 1
	return TranscodeConfig{
		Seed:     29,
		BaseLoad: 2,
		Horizon:  simtime.Seconds(150),
		Variants: []TranscodeVariant{
			{Key: "flat", Label: "inline transcoding (no farm)"},
			{Key: "neutral", Label: "neutral farm (instant, $0)", Farm: &transcode.FarmConfig{}},
			{Key: "fast", Label: "fast fleet (4x, $2.40/h)", Farm: one(fast)},
			{Key: "econ", Label: "econ fleet (0.5x, $0.30/h)", Farm: one(econ)},
			{Key: "mixed", Label: "mixed fleet + autoscaler", Farm: &transcode.FarmConfig{
				Classes:   []transcode.WorkerClass{fast, mixedEcon},
				Autoscale: scale,
			}},
		},
	}
}

// TranscodePoint is one variant's outcome.
type TranscodePoint struct {
	Variant string

	Queries    int
	Admitted   int
	Rejected   int
	Completed  int
	QoSOK      int
	Failed     int
	FarmRouted int // completed sessions whose GOPs came from the farm

	// Startup pools farm-routed sessions' startup delays (first transcoded
	// GOP ready after session start), milliseconds.
	Startup *stats.Sample

	Farm transcode.FarmStats

	// Replicas counts merged replica runs (0 or 1 means a single run).
	Replicas int
}

func (p *TranscodePoint) reps() int {
	if p.Replicas < 1 {
		return 1
	}
	return p.Replicas
}

// Merge folds another replica's point in: counters sum, startup samples
// pool, farm counters add.
func (p *TranscodePoint) Merge(o *TranscodePoint) {
	p.Queries += o.Queries
	p.Admitted += o.Admitted
	p.Rejected += o.Rejected
	p.Completed += o.Completed
	p.QoSOK += o.QoSOK
	p.Failed += o.Failed
	p.FarmRouted += o.FarmRouted
	for _, x := range o.Startup.Values() {
		p.Startup.Add(x)
	}
	p.Farm = addFarmStats(p.Farm, o.Farm)
	p.Replicas = p.reps() + o.reps()
}

// addFarmStats sums two farm snapshots; per-class rows pair by name in
// a's order with b's extras appended, so merges stay deterministic.
func addFarmStats(a, b transcode.FarmStats) transcode.FarmStats {
	a.Jobs += b.Jobs
	a.Completed += b.Completed
	a.DeadlineMiss += b.DeadlineMiss
	a.QueueDepth += b.QueueDepth
	if b.MaxQueueDepth > a.MaxQueueDepth {
		a.MaxQueueDepth = b.MaxQueueDepth
	}
	a.ScaleUps += b.ScaleUps
	a.ScaleDowns += b.ScaleDowns
	a.Dollars += b.Dollars
	merged := append([]transcode.ClassStats(nil), a.PerClass...)
	for _, cb := range b.PerClass {
		found := false
		for i := range merged {
			if merged[i].Name == cb.Name {
				merged[i].Workers += cb.Workers
				merged[i].BusySeconds += cb.BusySeconds
				found = true
				break
			}
		}
		if !found {
			merged = append(merged, cb)
		}
	}
	a.PerClass = merged
	return a
}

// variantByKey finds a sweep variant (nil if absent).
func (c TranscodeConfig) variantByKey(key string) *TranscodeVariant {
	for i := range c.Variants {
		if c.Variants[i].Key == key {
			return &c.Variants[i]
		}
	}
	return nil
}

// RunTranscodePoint runs one variant in a hermetic world and drains it
// completely before counters are read.
func RunTranscodePoint(cfg TranscodeConfig, key string, seed int64) (*TranscodePoint, error) {
	v := cfg.variantByKey(key)
	if v == nil {
		return nil, fmt.Errorf("experiments: unknown transcode variant %q", key)
	}
	if cfg.BaseLoad <= 0 {
		return nil, fmt.Errorf("experiments: non-positive base load %v", cfg.BaseLoad)
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("experiments: non-positive horizon %v", cfg.Horizon)
	}

	sim := simtime.NewSimulator()
	cluster := core.TestbedCluster(sim)
	corpus := media.StandardCorpus(uint64(seed))
	// Single-copy storage: only the original quality exists, so delivering
	// any lower tier forces an online transcode — the farm's workload.
	if _, err := cluster.LoadCorpus(corpus, replication.SingleCopyPolicy()); err != nil {
		return nil, err
	}

	mgr := core.NewManager(cluster, core.LRB{})
	if v.Farm != nil {
		if _, err := mgr.EnableFarm(*v.Farm); err != nil {
			return nil, err
		}
	}

	out := &TranscodePoint{Variant: key, Startup: &stats.Sample{}}
	gen := workload.New(workload.Config{
		Seed:             seed,
		Videos:           corpus,
		Sites:            cluster.Sites(),
		MeanInterArrival: simtime.Seconds(1 / cfg.BaseLoad),
	})
	gen.Drive(sim, cfg.Horizon, func(r workload.Request) {
		out.Queries++
		mgr.ServiceAsync(r.Site, r.Video, r.Req, core.ServiceOptions{
			OnDone: func(d *core.Delivery) {
				out.Completed++
				if d.Session.QoSOK() {
					out.QoSOK++
				}
				if d.Session.FarmRouted() {
					out.FarmRouted++
					out.Startup.Add(d.Session.StartupDelayMillis())
				}
			},
			OnFailed: func(_ *core.Delivery, _ error) { out.Failed++ },
		}, func(_ *core.Delivery, err error) {
			if err != nil {
				out.Rejected++
				return
			}
			out.Admitted++
		})
	})
	// Drain completely: arrivals, farm jobs, autoscaler ticks, and streams
	// are all finite, so the event queue empties.
	sim.Run()

	if got := out.Admitted + out.Rejected; got != out.Queries {
		return nil, fmt.Errorf("experiments: %d of %d transcode admissions never settled", out.Queries-got, out.Queries)
	}
	if got := out.Completed + out.Failed; got != out.Admitted {
		return nil, fmt.Errorf("experiments: %d of %d transcode sessions never concluded", out.Admitted-got, out.Admitted)
	}
	if f := mgr.Farm(); f != nil {
		out.Farm = f.Stats()
		if out.Farm.QueueDepth != 0 {
			return nil, fmt.Errorf("experiments: %d transcode jobs still queued after drain", out.Farm.QueueDepth)
		}
	}
	return out, nil
}

// TranscodeScenario sweeps the variants as independent hermetic cells.
type TranscodeScenario struct {
	Cfg TranscodeConfig
}

// Name implements runner.Scenario.
func (s *TranscodeScenario) Name() string { return "transcode" }

// Points implements runner.Scenario.
func (s *TranscodeScenario) Points() []runner.Point {
	pts := make([]runner.Point, len(s.Cfg.Variants))
	for i, v := range s.Cfg.Variants {
		pts[i] = runner.Point{Key: v.Key, Label: v.Label}
	}
	return pts
}

// Run implements runner.Scenario.
func (s *TranscodeScenario) Run(p runner.Point, seed int64) (*TranscodePoint, error) {
	return RunTranscodePoint(s.Cfg, p.Key, seed)
}

// RunTranscode runs the sweep serially.
func RunTranscode(cfg TranscodeConfig) ([]*TranscodePoint, error) {
	return RunTranscodeParallel(cfg, runner.Options{})
}

// RunTranscodeParallel is RunTranscode with worker-pool and replica
// control.
func RunTranscodeParallel(cfg TranscodeConfig, opts runner.Options) ([]*TranscodePoint, error) {
	opts.Seed = cfg.Seed
	prs, err := runner.Sweep[*TranscodePoint](&TranscodeScenario{Cfg: cfg}, opts)
	if err != nil {
		return nil, err
	}
	out := make([]*TranscodePoint, len(prs))
	for i, pr := range prs {
		out[i] = pr.Result
	}
	return out, nil
}

// TranscodeTable renders the sweep as tidy CSV: one row per variant.
// Counter columns of replica-merged points emit cross-replica means; the
// startup quantiles read the pooled cross-replica sample.
func TranscodeTable(points []*TranscodePoint) Table {
	t := Table{Header: []string{
		"variant", "queries", "admitted", "rejected", "completed", "qos_ok", "failed",
		"farm_routed", "jobs", "misses", "miss_rate", "max_queue",
		"scale_ups", "scale_downs", "dollars",
		"startup_p50_ms", "startup_p95_ms", "startup_p99_ms",
	}}
	for _, p := range points {
		reps := p.reps()
		f := p.Farm
		t.Rows = append(t.Rows, []string{
			p.Variant,
			fmtCount(p.Queries, reps),
			fmtCount(p.Admitted, reps),
			fmtCount(p.Rejected, reps),
			fmtCount(p.Completed, reps),
			fmtCount(p.QoSOK, reps),
			fmtCount(p.Failed, reps),
			fmtCount(p.FarmRouted, reps),
			fmtCount(int(f.Jobs), reps),
			fmtCount(int(f.DeadlineMiss), reps),
			fmt.Sprintf("%.4f", f.MissRate()),
			fmt.Sprintf("%d", f.MaxQueueDepth),
			fmtCount(int(f.ScaleUps), reps),
			fmtCount(int(f.ScaleDowns), reps),
			fmt.Sprintf("%.4f", f.Dollars/float64(reps)),
			fmt.Sprintf("%.3f", p.Startup.Percentile(50)),
			fmt.Sprintf("%.3f", p.Startup.Percentile(95)),
			fmt.Sprintf("%.3f", p.Startup.Percentile(99)),
		})
	}
	return t
}

// WriteTranscodeCSV writes the sweep as tidy CSV.
func WriteTranscodeCSV(w io.Writer, points []*TranscodePoint) error {
	return WriteTable(w, TranscodeTable(points))
}

// transcodeBench is the archived benchmark record (BENCH_transcode.json).
type transcodeBench struct {
	Experiment string                `json:"experiment"`
	Seed       int64                 `json:"seed"`
	Replicas   int                   `json:"replicas"`
	HorizonS   float64               `json:"horizon_s"`
	Variants   []transcodeBenchPoint `json:"variants"`
	// Pareto is the cost/latency frontier sweep: one (dollars, p99
	// startup, miss rate) sample per variant, in sweep order.
	Pareto []transcodeParetoPoint `json:"pareto"`
}

type transcodeBenchPoint struct {
	Variant      string  `json:"variant"`
	Queries      int     `json:"queries"`
	Admitted     int     `json:"admitted"`
	Rejected     int     `json:"rejected"`
	Completed    int     `json:"completed"`
	QoSOK        int     `json:"qos_ok"`
	Failed       int     `json:"failed"`
	FarmRouted   int     `json:"farm_routed"`
	Jobs         uint64  `json:"jobs"`
	DeadlineMiss uint64  `json:"deadline_miss"`
	MissRate     float64 `json:"miss_rate"`
	MaxQueue     int     `json:"max_queue"`
	ScaleUps     uint64  `json:"scale_ups"`
	ScaleDowns   uint64  `json:"scale_downs"`
	Dollars      float64 `json:"dollars"`
	StartupP50Ms float64 `json:"startup_p50_ms"`
	StartupP95Ms float64 `json:"startup_p95_ms"`
	StartupP99Ms float64 `json:"startup_p99_ms"`
}

type transcodeParetoPoint struct {
	Variant      string  `json:"variant"`
	Dollars      float64 `json:"dollars"`
	StartupP99Ms float64 `json:"startup_p99_ms"`
	MissRate     float64 `json:"miss_rate"`
}

// WriteTranscodeJSON archives the sweep as an indented JSON benchmark
// record.
func WriteTranscodeJSON(w io.Writer, cfg TranscodeConfig, points []*TranscodePoint) error {
	b := transcodeBench{
		Experiment: "transcode",
		Seed:       cfg.Seed,
		HorizonS:   simtime.ToSeconds(cfg.Horizon),
	}
	for _, p := range points {
		b.Replicas = p.reps()
		f := p.Farm
		b.Variants = append(b.Variants, transcodeBenchPoint{
			Variant:      p.Variant,
			Queries:      p.Queries,
			Admitted:     p.Admitted,
			Rejected:     p.Rejected,
			Completed:    p.Completed,
			QoSOK:        p.QoSOK,
			Failed:       p.Failed,
			FarmRouted:   p.FarmRouted,
			Jobs:         f.Jobs,
			DeadlineMiss: f.DeadlineMiss,
			MissRate:     f.MissRate(),
			MaxQueue:     f.MaxQueueDepth,
			ScaleUps:     f.ScaleUps,
			ScaleDowns:   f.ScaleDowns,
			Dollars:      f.Dollars / float64(p.reps()),
			StartupP50Ms: p.Startup.Percentile(50),
			StartupP95Ms: p.Startup.Percentile(95),
			StartupP99Ms: p.Startup.Percentile(99),
		})
		b.Pareto = append(b.Pareto, transcodeParetoPoint{
			Variant:      p.Variant,
			Dollars:      f.Dollars / float64(p.reps()),
			StartupP99Ms: p.Startup.Percentile(99),
			MissRate:     f.MissRate(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// FormatTranscode renders the sweep the way an operator reads a Pareto
// frontier: what each fleet costs, and what startup delay and miss rate it
// buys.
func FormatTranscode(cfg TranscodeConfig, points []*TranscodePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Transcode farm: %.0f s at %.1f qps, single-copy corpus (every lower tier transcodes)",
		simtime.ToSeconds(cfg.Horizon), cfg.BaseLoad)
	if len(points) > 0 && points[0].reps() > 1 {
		fmt.Fprintf(&b, "  (mean of %d replicas)", points[0].reps())
	}
	b.WriteString("\n\n")
	fmt.Fprintf(&b, "%-9s %8s %9s %9s %7s %7s %7s %7s %9s %10s %10s %10s\n",
		"variant", "queries", "admitted", "rejected", "qos-ok", "routed", "jobs", "misses",
		"dollars", "p50(ms)", "p99(ms)", "miss-rate")
	for _, p := range points {
		reps := p.reps()
		f := p.Farm
		fmt.Fprintf(&b, "%-9s %8s %9s %9s %7s %7s %7s %7s %9.4f %10.3f %10.3f %10.4f\n",
			p.Variant, fmtCount(p.Queries, reps), fmtCount(p.Admitted, reps),
			fmtCount(p.Rejected, reps), fmtCount(p.QoSOK, reps), fmtCount(p.FarmRouted, reps),
			fmtCount(int(f.Jobs), reps), fmtCount(int(f.DeadlineMiss), reps),
			f.Dollars/float64(reps), p.Startup.Percentile(50), p.Startup.Percentile(99), f.MissRate())
	}
	b.WriteString("\nPareto (dollars vs p99 startup):")
	for _, p := range points {
		fmt.Fprintf(&b, "  %s ($%.4f, %.1f ms)", p.Variant,
			p.Farm.Dollars/float64(p.reps()), p.Startup.Percentile(99))
	}
	b.WriteString("\n")
	return b.String()
}
