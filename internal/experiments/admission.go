package experiments

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"quasaq/internal/broker"
	"quasaq/internal/core"
	"quasaq/internal/media"
	"quasaq/internal/replication"
	"quasaq/internal/runner"
	"quasaq/internal/simtime"
	"quasaq/internal/stats"
	"quasaq/internal/workload"
)

// Admission-latency-vs-load: with the control plane switched to message
// passing (testbed latencies), every admission pays its two-phase
// reservation round trips, and under load the extra prepares of failed
// plan attempts and rollbacks stretch the tail. This experiment sweeps the
// query arrival rate and reports the admission-decision latency
// distribution per load level — the control-plane cost the paper's
// single-host prototype never had to pay.

// AdmissionConfig parameterizes the sweep.
type AdmissionConfig struct {
	Seed    int64
	Horizon simtime.Time // query arrival window per load level
	Loads   []float64    // arrival rates, queries per second
	Ctrl    broker.Config
}

// DefaultAdmissionConfig sweeps 0.5-8 qps for 200 s under the paper's LAN
// control-plane parameters.
func DefaultAdmissionConfig() AdmissionConfig {
	return AdmissionConfig{
		Seed:    17,
		Horizon: simtime.Seconds(200),
		Loads:   []float64{0.5, 1, 2, 4, 8},
		Ctrl:    broker.TestbedConfig(),
	}
}

// AdmissionPoint is one load level's outcome: admission counters plus the
// decision-latency sample (milliseconds from query arrival to the
// admit/reject verdict, two-phase reservations included).
type AdmissionPoint struct {
	Load         float64
	Queries      int
	Admitted     int
	Rejected     int
	CtrlTimeouts int // rejections whose cause chain includes ErrControlTimeout
	Latency      *stats.Sample

	// Replicas counts merged replica runs (0 or 1 means a single run).
	Replicas int
}

func (p *AdmissionPoint) reps() int {
	if p.Replicas < 1 {
		return 1
	}
	return p.Replicas
}

// Merge folds another replica's point in: counters sum, the latency samples
// pool (percentiles then read the cross-replica distribution).
func (p *AdmissionPoint) Merge(o *AdmissionPoint) {
	p.Queries += o.Queries
	p.Admitted += o.Admitted
	p.Rejected += o.Rejected
	p.CtrlTimeouts += o.CtrlTimeouts
	for _, x := range o.Latency.Values() {
		p.Latency.Add(x)
	}
	p.Replicas = p.reps() + o.reps()
}

// RunAdmissionPoint measures one load level in a hermetic world.
func RunAdmissionPoint(cfg AdmissionConfig, load float64, seed int64) (*AdmissionPoint, error) {
	if load <= 0 {
		return nil, fmt.Errorf("experiments: non-positive load %v", load)
	}
	sim := simtime.NewSimulator()
	cluster := core.TestbedCluster(sim)
	corpus := media.StandardCorpus(uint64(seed))
	if _, err := cluster.LoadCorpus(corpus, replication.DefaultPolicy()); err != nil {
		return nil, err
	}
	if err := cluster.ConfigureControl(cfg.Ctrl); err != nil {
		return nil, err
	}
	mgr := core.NewManager(cluster, core.LRB{})

	out := &AdmissionPoint{Load: load, Latency: &stats.Sample{}}
	gen := workload.New(workload.Config{
		Seed:             seed,
		Videos:           corpus,
		Sites:            cluster.Sites(),
		MeanInterArrival: simtime.Seconds(1 / load),
	})
	gen.Drive(sim, cfg.Horizon, func(r workload.Request) {
		out.Queries++
		arrived := sim.Now()
		mgr.ServiceAsync(r.Site, r.Video, r.Req, core.ServiceOptions{}, func(_ *core.Delivery, err error) {
			out.Latency.Add(1000 * simtime.ToSeconds(sim.Now()-arrived))
			if err != nil {
				out.Rejected++
				if errors.Is(err, core.ErrControlTimeout) {
					out.CtrlTimeouts++
				}
				return
			}
			out.Admitted++
		})
	})
	// Run past the horizon so every in-flight two-phase reservation settles;
	// the slack generously covers a full retry budget plus rollback.
	ctrl := cfg.Ctrl.Normalized()
	slack := 2 * simtime.Time(ctrl.Retries+2) * (ctrl.Timeout + ctrl.PrepareTTL)
	sim.RunUntil(cfg.Horizon + slack + simtime.Seconds(1))
	if got := out.Admitted + out.Rejected; got != out.Queries {
		return nil, fmt.Errorf("experiments: %d of %d admissions never settled", out.Queries-got, out.Queries)
	}
	return out, nil
}

// AdmissionScenario sweeps the load grid; each load level is a point.
type AdmissionScenario struct {
	Cfg AdmissionConfig
}

// Name implements runner.Scenario.
func (s *AdmissionScenario) Name() string { return "admission" }

// Points implements runner.Scenario.
func (s *AdmissionScenario) Points() []runner.Point {
	pts := make([]runner.Point, len(s.Cfg.Loads))
	for i, load := range s.Cfg.Loads {
		pts[i] = runner.Point{
			Key:   "load-" + strconv.FormatFloat(load, 'g', -1, 64),
			Label: fmt.Sprintf("%g qps", load),
		}
	}
	return pts
}

// Run implements runner.Scenario.
func (s *AdmissionScenario) Run(p runner.Point, seed int64) (*AdmissionPoint, error) {
	load, err := strconv.ParseFloat(strings.TrimPrefix(p.Key, "load-"), 64)
	if err != nil {
		return nil, fmt.Errorf("experiments: bad admission point key %q", p.Key)
	}
	return RunAdmissionPoint(s.Cfg, load, seed)
}

// RunAdmission runs the sweep serially.
func RunAdmission(cfg AdmissionConfig) ([]*AdmissionPoint, error) {
	return RunAdmissionParallel(cfg, runner.Options{})
}

// RunAdmissionParallel is RunAdmission with worker-pool and replica control.
func RunAdmissionParallel(cfg AdmissionConfig, opts runner.Options) ([]*AdmissionPoint, error) {
	opts.Seed = cfg.Seed
	prs, err := runner.Sweep[*AdmissionPoint](&AdmissionScenario{Cfg: cfg}, opts)
	if err != nil {
		return nil, err
	}
	out := make([]*AdmissionPoint, len(prs))
	for i, pr := range prs {
		out[i] = pr.Result
	}
	return out, nil
}

// AdmissionTable renders the sweep as tidy CSV: one row per load level.
// Counters of replica-merged points emit cross-replica means; the latency
// quantiles read the pooled cross-replica sample.
func AdmissionTable(points []*AdmissionPoint) Table {
	t := Table{Header: []string{
		"load_qps", "queries", "admitted", "rejected", "ctrl_timeouts",
		"mean_ms", "p50_ms", "p95_ms", "max_ms",
	}}
	for _, p := range points {
		reps := p.reps()
		sum := p.Latency.Summary()
		t.Rows = append(t.Rows, []string{
			strconv.FormatFloat(p.Load, 'g', -1, 64),
			fmtCount(p.Queries, reps),
			fmtCount(p.Admitted, reps),
			fmtCount(p.Rejected, reps),
			fmtCount(p.CtrlTimeouts, reps),
			strconv.FormatFloat(sum.Mean(), 'f', 3, 64),
			strconv.FormatFloat(p.Latency.Percentile(50), 'f', 3, 64),
			strconv.FormatFloat(p.Latency.Percentile(95), 'f', 3, 64),
			strconv.FormatFloat(sum.Max(), 'f', 3, 64),
		})
	}
	return t
}

// WriteAdmissionCSV writes the sweep as tidy CSV.
func WriteAdmissionCSV(w io.Writer, points []*AdmissionPoint) error {
	return WriteTable(w, AdmissionTable(points))
}

// FormatAdmission renders the sweep as a report table.
func FormatAdmission(cfg AdmissionConfig, points []*AdmissionPoint) string {
	var b strings.Builder
	c := cfg.Ctrl.Normalized()
	fmt.Fprintf(&b, "Admission latency vs load  (ctrl: latency %v, timeout %v, %d retries, TTL %v)",
		c.Latency, c.Timeout, c.Retries, c.PrepareTTL)
	if len(points) > 0 && points[0].reps() > 1 {
		fmt.Fprintf(&b, "  (mean of %d replicas)", points[0].reps())
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%10s %9s %9s %9s %9s %10s %10s %10s %10s\n",
		"load(qps)", "queries", "admitted", "rejected", "ctrl-t/o",
		"mean(ms)", "p50(ms)", "p95(ms)", "max(ms)")
	for _, p := range points {
		reps := p.reps()
		sum := p.Latency.Summary()
		fmt.Fprintf(&b, "%10g %9s %9s %9s %9s %10.3f %10.3f %10.3f %10.3f\n",
			p.Load, fmtCount(p.Queries, reps), fmtCount(p.Admitted, reps),
			fmtCount(p.Rejected, reps), fmtCount(p.CtrlTimeouts, reps),
			sum.Mean(), p.Latency.Percentile(50), p.Latency.Percentile(95), sum.Max())
	}
	return b.String()
}
