package experiments

import (
	"fmt"
	"strings"
	"time"

	"quasaq/internal/core"
	"quasaq/internal/media"
	"quasaq/internal/qos"
	"quasaq/internal/replication"
	"quasaq/internal/simtime"
	"quasaq/internal/transport"
	"quasaq/internal/workload"
)

// OverheadResult reproduces the §5.2 overhead analysis: QuaSAQ's own cost
// is (a) the query-time planning work (the paper: "a few milliseconds ...
// negligible") and (b) the soft-real-time scheduler's maintenance (the
// paper measured 0.16 ms per 10 ms quantum, 1.6%, on its hardware).
type OverheadResult struct {
	Queries           int
	PlansPerQuery     float64
	PlanMicrosPerQry  float64 // cold-cache wall-clock planning+admission cost per query
	WarmMicrosPerQry  float64 // same workload replayed against a warm candidate cache
	CacheHits         uint64  // plan-cache hits over both passes
	CacheMisses       uint64  // plan-cache misses (cold fills)
	SchedulerOverhead float64 // fraction of CPU spent on dispatch bookkeeping
	DispatchesPerSec  float64

	// Replicas counts merged replica runs (0 or 1 means a single run).
	Replicas int
}

func (r *OverheadResult) reps() float64 {
	if r.Replicas < 1 {
		return 1
	}
	return float64(r.Replicas)
}

// Merge folds another replica's measurement into r: per-query costs average
// weighted by query count, cache and query counters sum, and the scheduler
// figures average weighted by replica count.
func (r *OverheadResult) Merge(o *OverheadResult) {
	qa, qb := float64(r.Queries), float64(o.Queries)
	if qa+qb > 0 {
		r.PlansPerQuery = (r.PlansPerQuery*qa + o.PlansPerQuery*qb) / (qa + qb)
		r.PlanMicrosPerQry = (r.PlanMicrosPerQry*qa + o.PlanMicrosPerQry*qb) / (qa + qb)
		r.WarmMicrosPerQry = (r.WarmMicrosPerQry*qa + o.WarmMicrosPerQry*qb) / (qa + qb)
	}
	ra, rb := r.reps(), o.reps()
	r.SchedulerOverhead = (r.SchedulerOverhead*ra + o.SchedulerOverhead*rb) / (ra + rb)
	r.DispatchesPerSec = (r.DispatchesPerSec*ra + o.DispatchesPerSec*rb) / (ra + rb)
	r.Queries += o.Queries
	r.CacheHits += o.CacheHits
	r.CacheMisses += o.CacheMisses
	r.Replicas = int(ra + rb)
}

// RunOverhead measures both overheads.
func RunOverhead(seed int64, queries int) (*OverheadResult, error) {
	if queries <= 0 {
		queries = 500
	}
	// (a) Planning cost: wall-clock time of Service calls (plan
	// enumeration + ranking + admission), amortized per query. The
	// workload is run twice with the same request sequence: the first
	// pass fills the candidate cache (cold), the second replays against
	// it (warm) — the cost split the staged plan pipeline buys.
	sim := simtime.NewSimulator()
	cluster := core.TestbedCluster(sim)
	corpus := media.StandardCorpus(uint64(seed))
	if _, err := cluster.LoadCorpus(corpus, replication.DefaultPolicy()); err != nil {
		return nil, err
	}
	mgr := core.NewManager(cluster, core.LRB{})
	pass := func() time.Duration {
		gen := workload.New(workload.Config{Seed: seed, Videos: corpus, Sites: cluster.Sites()})
		begin := time.Now()
		for i := 0; i < queries; i++ {
			r := gen.Next()
			d, err := mgr.Service(r.Site, r.Video, r.Req, core.ServiceOptions{})
			if err == nil {
				// Cancel immediately: we are timing the planner, not the
				// streaming.
				d.Cancel()
			}
		}
		return time.Since(begin)
	}
	elapsed := pass()
	warm := pass()
	st := mgr.Stats()
	cst := mgr.PlanCache().Stats()

	// (b) Scheduler overhead: stream under the paper's measured 0.16 ms
	// dispatch cost and account the bookkeeping share of the busy CPU.
	sim2 := simtime.NewSimulator()
	cluster2 := core.TestbedCluster(sim2)
	if _, err := cluster2.LoadCorpus(corpus, replication.DefaultPolicy()); err != nil {
		return nil, err
	}
	node := cluster2.Nodes["srv-a"]
	node.CPU().DispatchOverhead = 160 * time.Microsecond
	mgr2 := core.NewManager(cluster2, core.LRB{})
	req := qos.Requirement{MinResolution: qos.ResDVD, MinFrameRate: 23}
	for i := 0; i < 4; i++ {
		if _, err := mgr2.Service("srv-a", media.VideoID(7), req, core.ServiceOptions{}); err != nil {
			return nil, err
		}
	}
	horizon := simtime.Seconds(60)
	sim2.RunUntil(horizon)
	dispatches := node.CPU().Dispatches()
	overheadTime := simtime.Time(dispatches) * 160 * time.Microsecond

	return &OverheadResult{
		Queries:           queries,
		PlansPerQuery:     float64(st.PlansGenerated) / float64(st.Queries),
		PlanMicrosPerQry:  float64(elapsed.Microseconds()) / float64(queries),
		WarmMicrosPerQry:  float64(warm.Microseconds()) / float64(queries),
		CacheHits:         cst.Hits,
		CacheMisses:       cst.Misses,
		SchedulerOverhead: float64(overheadTime) / float64(horizon),
		DispatchesPerSec:  float64(dispatches) / simtime.ToSeconds(horizon),
	}, nil
}

// FormatOverhead renders the overhead numbers next to the paper's.
func FormatOverhead(r *OverheadResult) string {
	var b strings.Builder
	b.WriteString("QuaSAQ overhead (paper §5.2)\n")
	fmt.Fprintf(&b, "  plans generated per query:      %.1f\n", r.PlansPerQuery)
	fmt.Fprintf(&b, "  planning cost per query (cold): %.0f us (paper: \"a few milliseconds\" on 2002 hardware)\n", r.PlanMicrosPerQry)
	fmt.Fprintf(&b, "  planning cost per query (warm): %.0f us (candidate cache: %d hits, %d misses)\n",
		r.WarmMicrosPerQry, r.CacheHits, r.CacheMisses)
	fmt.Fprintf(&b, "  scheduler dispatches per sec:   %.0f\n", r.DispatchesPerSec)
	fmt.Fprintf(&b, "  scheduler maintenance overhead: %.2f%% of one CPU (paper: 1.6%%, 0.16 ms per 10 ms)\n", 100*r.SchedulerOverhead)
	return b.String()
}

// StreamCPUShare is a small helper used by documentation tests: the CPU
// share of one full-quality stream, exposing the calibration constant.
func StreamCPUShare() float64 {
	q := media.LadderQuality(media.LinkLAN, 23.97)
	return transport.StreamCPUCost(media.NewVariant(q), 23.97)
}
