package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

// Acceptance test for the observability layer: a chaos run with tracing on
// must export valid Chrome trace_event JSON in which every admitted session
// carries its pipeline spans (plan enumeration, reservation, streaming) and
// every mid-stream failure carries a failover span.
func TestChaosTraceCoversEverySession(t *testing.T) {
	cfg := shortChaosConfig()
	cfg.Trace = true
	res, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("Trace not populated with cfg.Trace set")
	}
	if res.Metrics == nil {
		t.Fatal("Metrics registry not exposed on the result")
	}

	var buf bytes.Buffer
	if err := res.Trace.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	counts := map[string]int{}
	siteDownRejects := 0
	for _, e := range doc.TraceEvents {
		if e.Phase == "M" {
			continue
		}
		counts[e.Name+"/"+e.Phase]++
		if e.Name == "reject" && e.Args["cause"] == "query site down" {
			siteDownRejects++
		}
		if e.TS < 0 {
			t.Fatalf("negative timestamp on %q", e.Name)
		}
	}
	spanTotal := func(name string) int { return counts[name+"/X"] + counts[name+"/B"] }

	// Every query either bounces off a down query site or reaches plan
	// enumeration.
	if got := spanTotal("plan_enumerate"); got < res.Queries-siteDownRejects {
		t.Fatalf("plan_enumerate spans = %d, want >= %d (queries %d minus %d site-down rejects)",
			got, res.Queries-siteDownRejects, res.Queries, siteDownRejects)
	}
	// Every admitted session reserved and streamed. Streams may still be
	// open ("B") at the horizon; failovers and best-effort fallbacks open
	// additional stream spans, so admitted is a floor.
	if got := counts["reserve/X"]; got < res.Admitted {
		t.Fatalf("reserve spans = %d, want >= %d admissions", got, res.Admitted)
	}
	if got := spanTotal("stream"); got < res.Admitted {
		t.Fatalf("stream spans = %d, want >= %d (one per admitted session)", got, res.Admitted)
	}
	if got := counts["admit/i"]; got != res.Admitted {
		t.Fatalf("admit instants = %d, want exactly %d", got, res.Admitted)
	}
	if got := counts["reject/i"]; got != res.Rejected {
		t.Fatalf("reject instants = %d, want exactly %d", got, res.Rejected)
	}
	// Every detected session failure opens a failover span.
	if got := spanTotal("failover"); uint64(got) != res.Stats.SessionFailures {
		t.Fatalf("failover spans = %d, want %d (one per session failure)", got, res.Stats.SessionFailures)
	}
	if counts["gop/i"] == 0 {
		t.Fatal("no GOP progress instants recorded")
	}

	// The registry view agrees with the trace-derived counts.
	var sawQueries bool
	for _, m := range res.Metrics.Snapshot() {
		if m.Name == "quasaq_queries_total" {
			sawQueries = true
			if int(m.Value) != res.Queries {
				t.Fatalf("quasaq_queries_total = %v, want %d", m.Value, res.Queries)
			}
		}
	}
	if !sawQueries {
		t.Fatal("quasaq_queries_total missing from the registry snapshot")
	}
}

// Tracing must not perturb the simulation: the same seed with and without
// tracing yields identical outcome statistics.
func TestChaosTraceDoesNotPerturbRun(t *testing.T) {
	plain, err := RunChaos(shortChaosConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := shortChaosConfig()
	cfg.Trace = true
	traced, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stats != traced.Stats {
		t.Fatalf("tracing changed the run:\nplain:  %+v\ntraced: %+v", plain.Stats, traced.Stats)
	}
	if plain.Admitted != traced.Admitted || plain.Rejected != traced.Rejected {
		t.Fatalf("admission outcomes diverge: %d/%d vs %d/%d",
			plain.Admitted, plain.Rejected, traced.Admitted, traced.Rejected)
	}
}
