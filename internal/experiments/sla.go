package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"quasaq/internal/broker"
	"quasaq/internal/core"
	"quasaq/internal/faults"
	"quasaq/internal/guardian"
	"quasaq/internal/media"
	"quasaq/internal/qos"
	"quasaq/internal/replication"
	"quasaq/internal/runner"
	"quasaq/internal/simtime"
	"quasaq/internal/stats"
	"quasaq/internal/vdbms"
	"quasaq/internal/workload"
)

// The SLA experiment sweeps clause strictness: every arriving query carries
// the same WITH QOS network clause (a "tier"), the admission gate prices it
// against the candidate plans, and the guardian enforces it over the live
// windows while link congestion squeezes two delivery sites. Each declared
// violation and recovery lands in the vdbms's own qoe table; when the world
// drains, the per-metric violation counts and QoE severity percentiles are
// read back with SELECT ... FROM qoe — the database reports on its own
// service quality, which is the paper's end-to-end loop closed.

// SLATier is one clause-strictness level. The clause is QoS-term text as it
// would appear inside WITH QOS (...), parsed by the vdbms parser, so the
// experiment exercises the exact surface a client would.
type SLATier struct {
	Name   string
	Clause string // "" or "any" = no network terms (control tier)
}

// SLAConfig parameterizes the sweep.
type SLAConfig struct {
	Seed     int64
	BaseLoad float64          // queries per second at phase rate 1
	Phases   []workload.Phase // arrival ramp; the horizon is their sum
	Schedule faults.Schedule  // congestion plan shared by every tier
	Ctrl     broker.Config
	Guardian guardian.Config
	Tiers    []SLATier
}

// DefaultSLAConfig ramps 1→8→1 qps over 140 s with mid-run congestion on
// srv-a and srv-b, swept over four tiers from no clause to a strict one.
// The delay bounds bracket the corpus's priced inter-frame delays
// (1000/fps ≈ 33–50 ms) and the throughput floors bracket the low quality
// tiers' bitrates, so stricter tiers genuinely reject and violate more.
func DefaultSLAConfig() SLAConfig {
	return SLAConfig{
		Seed:     31,
		BaseLoad: 1,
		Phases: []workload.Phase{
			{Rate: 1, Duration: simtime.Seconds(30)},
			{Rate: 8, Duration: simtime.Seconds(80)},
			{Rate: 1, Duration: simtime.Seconds(30)},
		},
		Schedule: faults.Schedule{
			{At: simtime.Seconds(40), Kind: faults.LinkCongest, Target: "srv-a", Factor: 0.5},
			{At: simtime.Seconds(55), Kind: faults.LinkCongest, Target: "srv-b", Factor: 0.6},
			{At: simtime.Seconds(110), Kind: faults.LinkRestore, Target: "srv-a"},
			{At: simtime.Seconds(120), Kind: faults.LinkRestore, Target: "srv-b"},
		},
		Ctrl:     broker.TestbedConfig(),
		Guardian: guardian.Config{},
		Tiers: []SLATier{
			{Name: "none", Clause: "any"},
			{Name: "bronze", Clause: "loss <= 0.25, delay <= 120"},
			{Name: "silver", Clause: "loss <= 0.10, delay <= 60, throughput >= 40000"},
			{Name: "gold", Clause: "loss <= 0.04, delay <= 48, jitter <= 45, throughput >= 90000"},
		},
	}
}

// Horizon is the arrival window: the sum of the phase durations.
func (c SLAConfig) Horizon() simtime.Time {
	var h simtime.Time
	for _, p := range c.Phases {
		h += p.Duration
	}
	return h
}

// SLAPoint is one tier's outcome.
type SLAPoint struct {
	Tier   string
	Clause string // canonical clause text (Requirement.String of the net terms)

	Queries       int
	Admitted      int
	Rejected      int
	Unsatisfiable int // rejections carrying core.ErrQoSUnsatisfiable
	Completed     int
	QoSOK         int
	Failed        int
	Abandoned     int // failures carrying guardian.ErrQoSAbandoned

	Guardian guardian.Stats

	// Read back through the vdbms engine after the drain (SELECT ... FROM
	// qoe), not from in-process counters: the persisted history is the
	// artifact under test.
	QoERows       int
	QoEViolations int
	QoERecovered  int
	QoEPeaks      int

	// Severity samples pooled from the qoe violation rows' avg column.
	DelaySeverity *stats.Sample // ms
	LossSeverity  *stats.Sample // fraction

	Replicas int
}

func (p *SLAPoint) reps() int {
	if p.Replicas < 1 {
		return 1
	}
	return p.Replicas
}

// Merge folds another replica's point in: counters sum, severity samples
// pool, guardian counters add.
func (p *SLAPoint) Merge(o *SLAPoint) {
	p.Queries += o.Queries
	p.Admitted += o.Admitted
	p.Rejected += o.Rejected
	p.Unsatisfiable += o.Unsatisfiable
	p.Completed += o.Completed
	p.QoSOK += o.QoSOK
	p.Failed += o.Failed
	p.Abandoned += o.Abandoned
	p.Guardian = addGuardianStats(p.Guardian, o.Guardian)
	p.QoERows += o.QoERows
	p.QoEViolations += o.QoEViolations
	p.QoERecovered += o.QoERecovered
	p.QoEPeaks += o.QoEPeaks
	for _, x := range o.DelaySeverity.Values() {
		p.DelaySeverity.Add(x)
	}
	for _, x := range o.LossSeverity.Values() {
		p.LossSeverity.Add(x)
	}
	p.Replicas = p.reps() + o.reps()
}

// slaTier finds a tier by name.
func (c SLAConfig) slaTier(name string) (SLATier, bool) {
	for _, t := range c.Tiers {
		if t.Name == name {
			return t, true
		}
	}
	return SLATier{}, false
}

// RunSLAPoint runs one tier in a hermetic world and drains it completely,
// then queries the QoE history back through the vdbms engine.
func RunSLAPoint(cfg SLAConfig, tierName string, seed int64) (*SLAPoint, error) {
	tier, ok := cfg.slaTier(tierName)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown SLA tier %q", tierName)
	}
	if cfg.BaseLoad <= 0 {
		return nil, fmt.Errorf("experiments: non-positive base load %v", cfg.BaseLoad)
	}
	if len(cfg.Phases) == 0 {
		return nil, fmt.Errorf("experiments: SLA needs a phase ramp")
	}
	parsed, err := vdbms.ParseRequirement(tier.Clause)
	if err != nil {
		return nil, fmt.Errorf("experiments: tier %q clause: %w", tier.Name, err)
	}
	clause := parsed.Net

	sim := simtime.NewSimulator()
	cluster := core.TestbedCluster(sim)
	corpus := media.StandardCorpus(uint64(seed))
	if _, err := cluster.LoadCorpus(corpus, replication.DefaultPolicy()); err != nil {
		return nil, err
	}
	ctrl := cfg.Ctrl
	ctrl.Seed = seed
	if err := cluster.ConfigureControl(ctrl); err != nil {
		return nil, err
	}
	mgr := core.NewManager(cluster, core.LRB{})
	pol := core.DefaultFailoverPolicy()
	pol.BestEffortFallback = true
	mgr.EnableFailover(pol)
	guard, err := guardian.New(mgr, cfg.Guardian)
	if err != nil {
		return nil, err
	}

	in := faults.NewInjector(sim)
	for _, site := range cluster.Sites() {
		in.RegisterNode(cluster.Nodes[site])
	}
	if err := in.Apply(cfg.Schedule); err != nil {
		return nil, err
	}

	out := &SLAPoint{
		Tier:          tier.Name,
		Clause:        clauseString(clause),
		DelaySeverity: &stats.Sample{},
		LossSeverity:  &stats.Sample{},
	}
	gen := workload.New(workload.Config{
		Seed:             seed,
		Videos:           corpus,
		Sites:            cluster.Sites(),
		MeanInterArrival: simtime.Seconds(1 / cfg.BaseLoad),
		Phases:           cfg.Phases,
	})
	gen.Drive(sim, cfg.Horizon(), func(r workload.Request) {
		out.Queries++
		req := r.Req.WithNet(clause...)
		mgr.ServiceAsync(r.Site, r.Video, req, core.ServiceOptions{
			OnDone: func(d *core.Delivery) {
				out.Completed++
				if d.Session.QoSOK() {
					out.QoSOK++
				}
			},
			OnFailed: func(_ *core.Delivery, err error) {
				out.Failed++
				if errors.Is(err, guardian.ErrQoSAbandoned) {
					out.Abandoned++
				}
			},
		}, func(_ *core.Delivery, err error) {
			if err != nil {
				out.Rejected++
				if errors.Is(err, core.ErrQoSUnsatisfiable) {
					out.Unsatisfiable++
				}
				return
			}
			out.Admitted++
		})
	})
	sim.Run()

	if got := out.Admitted + out.Rejected; got != out.Queries {
		return nil, fmt.Errorf("experiments: %d of %d SLA admissions never settled", out.Queries-got, out.Queries)
	}
	if got := out.Completed + out.Failed; got != out.Admitted {
		return nil, fmt.Errorf("experiments: %d of %d SLA sessions never concluded", out.Admitted-got, out.Admitted)
	}
	out.Guardian = guard.Stats()
	if err := out.readQoE(cluster.Engine); err != nil {
		return nil, err
	}
	return out, nil
}

// readQoE fills the point's QoE fields by querying the engine's qoe table —
// the same SELECT surface any client gets.
func (p *SLAPoint) readQoE(e *vdbms.Engine) error {
	all, _, err := e.QoESQL("SELECT * FROM qoe")
	if err != nil {
		return err
	}
	p.QoERows = len(all)
	viols, _, err := e.QoESQL("SELECT * FROM qoe WHERE kind = 'violation'")
	if err != nil {
		return err
	}
	p.QoEViolations = len(viols)
	rec, _, err := e.QoESQL("SELECT * FROM qoe WHERE kind = 'recovered'")
	if err != nil {
		return err
	}
	p.QoERecovered = len(rec)
	peaks, _, err := e.QoESQL("SELECT * FROM qoe WHERE kind = 'violation' AND peak = 1")
	if err != nil {
		return err
	}
	p.QoEPeaks = len(peaks)
	delays, _, err := e.QoESQL("SELECT * FROM qoe WHERE kind = 'violation' AND metric = 'delay'")
	if err != nil {
		return err
	}
	for _, r := range delays {
		p.DelaySeverity.Add(r.Avg)
	}
	losses, _, err := e.QoESQL("SELECT * FROM qoe WHERE kind = 'violation' AND metric = 'loss'")
	if err != nil {
		return err
	}
	for _, r := range losses {
		p.LossSeverity.Add(r.Avg)
	}
	return nil
}

// SLAScenario sweeps the configured tiers as runner points.
type SLAScenario struct {
	Cfg SLAConfig
}

// Name implements runner.Scenario.
func (s *SLAScenario) Name() string { return "sla" }

// Points implements runner.Scenario.
func (s *SLAScenario) Points() []runner.Point {
	pts := make([]runner.Point, len(s.Cfg.Tiers))
	for i, t := range s.Cfg.Tiers {
		pts[i] = runner.Point{Key: t.Name, Label: t.Clause}
	}
	return pts
}

// Run implements runner.Scenario.
func (s *SLAScenario) Run(p runner.Point, seed int64) (*SLAPoint, error) {
	return RunSLAPoint(s.Cfg, p.Key, seed)
}

// RunSLA runs the tier sweep serially.
func RunSLA(cfg SLAConfig) ([]*SLAPoint, error) {
	return RunSLAParallel(cfg, runner.Options{})
}

// RunSLAParallel is RunSLA with worker-pool and replica control.
func RunSLAParallel(cfg SLAConfig, opts runner.Options) ([]*SLAPoint, error) {
	opts.Seed = cfg.Seed
	prs, err := runner.Sweep[*SLAPoint](&SLAScenario{Cfg: cfg}, opts)
	if err != nil {
		return nil, err
	}
	out := make([]*SLAPoint, len(prs))
	for i, pr := range prs {
		out[i] = pr.Result
	}
	return out, nil
}

// SLATable renders the sweep as tidy CSV: one row per tier. Counter columns
// of replica-merged points emit cross-replica means; the severity quantiles
// read the pooled cross-replica samples.
func SLATable(points []*SLAPoint) Table {
	t := Table{Header: []string{
		"tier", "clause", "queries", "admitted", "rejected", "unsatisfiable",
		"completed", "qos_ok", "failed", "abandoned",
		"viol_loss", "viol_delay", "viol_jitter", "viol_throughput",
		"qoe_rows", "qoe_violations", "qoe_recovered", "qoe_peaks",
		"qoe_delay_p95_ms", "qoe_delay_p99_ms", "qoe_loss_p95", "qoe_loss_p99",
	}}
	for _, p := range points {
		reps := p.reps()
		g := p.Guardian
		t.Rows = append(t.Rows, []string{
			p.Tier,
			p.Clause,
			fmtCount(p.Queries, reps),
			fmtCount(p.Admitted, reps),
			fmtCount(p.Rejected, reps),
			fmtCount(p.Unsatisfiable, reps),
			fmtCount(p.Completed, reps),
			fmtCount(p.QoSOK, reps),
			fmtCount(p.Failed, reps),
			fmtCount(p.Abandoned, reps),
			fmtCount(int(g.LossViolations), reps),
			fmtCount(int(g.DelayViolations), reps),
			fmtCount(int(g.JitterViolations), reps),
			fmtCount(int(g.ThroughputViolations), reps),
			fmtCount(p.QoERows, reps),
			fmtCount(p.QoEViolations, reps),
			fmtCount(p.QoERecovered, reps),
			fmtCount(p.QoEPeaks, reps),
			fmt.Sprintf("%.3f", p.DelaySeverity.Percentile(95)),
			fmt.Sprintf("%.3f", p.DelaySeverity.Percentile(99)),
			fmt.Sprintf("%.4f", p.LossSeverity.Percentile(95)),
			fmt.Sprintf("%.4f", p.LossSeverity.Percentile(99)),
		})
	}
	return t
}

// WriteSLACSV writes the sweep as tidy CSV.
func WriteSLACSV(w io.Writer, points []*SLAPoint) error {
	return WriteTable(w, SLATable(points))
}

// FormatSLA renders the sweep as a console table.
func FormatSLA(cfg SLAConfig, points []*SLAPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SLA: %.0f s ramp, congestion on srv-a/srv-b, %d clause tiers",
		simtime.ToSeconds(cfg.Horizon()), len(cfg.Tiers))
	if len(points) > 0 && points[0].reps() > 1 {
		fmt.Fprintf(&b, "  (mean of %d replicas)", points[0].reps())
	}
	b.WriteString("\n\n")
	fmt.Fprintf(&b, "%-8s %8s %9s %9s %7s %10s %10s %10s %12s %10s\n",
		"tier", "queries", "admitted", "unsatisf", "qos-ok", "abandoned",
		"violations", "qoe-rows", "delay-p99", "loss-p99")
	for _, p := range points {
		reps := p.reps()
		fmt.Fprintf(&b, "%-8s %8s %9s %9s %7s %10s %10s %10s %12.3f %10.4f\n",
			p.Tier, fmtCount(p.Queries, reps), fmtCount(p.Admitted, reps),
			fmtCount(p.Unsatisfiable, reps), fmtCount(p.QoSOK, reps),
			fmtCount(p.Abandoned, reps), fmtCount(int(p.Guardian.Violations), reps),
			fmtCount(p.QoERows, reps),
			p.DelaySeverity.Percentile(99), p.LossSeverity.Percentile(99))
	}
	return strings.TrimRight(b.String(), "\n")
}

// slaBench is the archived benchmark record (BENCH_sla.json).
type slaBench struct {
	Experiment string          `json:"experiment"`
	Seed       int64           `json:"seed"`
	Replicas   int             `json:"replicas"`
	HorizonS   float64         `json:"horizon_s"`
	Tiers      []slaBenchPoint `json:"tiers"`
}

type slaBenchPoint struct {
	Tier          string         `json:"tier"`
	Clause        string         `json:"clause"`
	Queries       int            `json:"queries"`
	Admitted      int            `json:"admitted"`
	Rejected      int            `json:"rejected"`
	Unsatisfiable int            `json:"unsatisfiable"`
	Completed     int            `json:"completed"`
	QoSOK         int            `json:"qos_ok"`
	Failed        int            `json:"failed"`
	Abandoned     int            `json:"abandoned"`
	Guardian      guardian.Stats `json:"guardian"`
	QoERows       int            `json:"qoe_rows"`
	QoEViolations int            `json:"qoe_violations"`
	QoERecovered  int            `json:"qoe_recovered"`
	QoEPeaks      int            `json:"qoe_peaks"`
	DelayP95Ms    float64        `json:"qoe_delay_p95_ms"`
	DelayP99Ms    float64        `json:"qoe_delay_p99_ms"`
	LossP95       float64        `json:"qoe_loss_p95"`
	LossP99       float64        `json:"qoe_loss_p99"`
}

// WriteSLAJSON archives the run as an indented JSON benchmark record.
func WriteSLAJSON(w io.Writer, cfg SLAConfig, points []*SLAPoint) error {
	b := slaBench{
		Experiment: "sla",
		Seed:       cfg.Seed,
		HorizonS:   simtime.ToSeconds(cfg.Horizon()),
	}
	for _, p := range points {
		b.Replicas = p.reps()
		b.Tiers = append(b.Tiers, slaBenchPoint{
			Tier:          p.Tier,
			Clause:        p.Clause,
			Queries:       p.Queries,
			Admitted:      p.Admitted,
			Rejected:      p.Rejected,
			Unsatisfiable: p.Unsatisfiable,
			Completed:     p.Completed,
			QoSOK:         p.QoSOK,
			Failed:        p.Failed,
			Abandoned:     p.Abandoned,
			Guardian:      p.Guardian,
			QoERows:       p.QoERows,
			QoEViolations: p.QoEViolations,
			QoERecovered:  p.QoERecovered,
			QoEPeaks:      p.QoEPeaks,
			DelayP95Ms:    p.DelaySeverity.Percentile(95),
			DelayP99Ms:    p.DelaySeverity.Percentile(99),
			LossP95:       p.LossSeverity.Percentile(95),
			LossP99:       p.LossSeverity.Percentile(99),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// clauseString renders the net terms canonically (empty for the control tier).
func clauseString(ts []qos.Threshold) string {
	if len(ts) == 0 {
		return "any"
	}
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return strings.Join(parts, ", ")
}
