package experiments

import (
	"strings"
	"testing"

	"quasaq/internal/simtime"
)

// shortFig5 keeps unit-test runtime low; benchmarks run the full config.
func shortFig5(t *testing.T) *Fig5Result {
	t.Helper()
	cfg := DefaultFig5Config()
	cfg.Frames = 400
	res, err := RunFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFig5Shape(t *testing.T) {
	res := shortFig5(t)
	vLow, qLow := res.Panels[0], res.Panels[1]
	vHigh, qHigh := res.Panels[2], res.Panels[3]

	// Low contention: both systems process timely — means near ideal.
	for _, p := range []DelayPanel{vLow, qLow} {
		if m := p.InterFrame.Mean(); m < res.IdealMillis*0.9 || m > res.IdealMillis*1.15 {
			t.Fatalf("%s: mean %.2f ms, ideal %.2f", p.Label, m, res.IdealMillis)
		}
	}
	// High contention: VDBMS falls apart — its variance must be far above
	// QuaSAQ's (the paper: "one magnitude higher" axis scale).
	if vHigh.InterFrame.StdDev() < 3*qHigh.InterFrame.StdDev() {
		t.Fatalf("VDBMS high SD %.2f not >> QuaSAQ high SD %.2f",
			vHigh.InterFrame.StdDev(), qHigh.InterFrame.StdDev())
	}
	// VDBMS high contention mean drifts above ideal; QuaSAQ stays put.
	if vHigh.InterFrame.Mean() <= qHigh.InterFrame.Mean() {
		t.Fatalf("VDBMS high mean %.2f should exceed QuaSAQ high mean %.2f",
			vHigh.InterFrame.Mean(), qHigh.InterFrame.Mean())
	}
	if m := qHigh.InterFrame.Mean(); m < res.IdealMillis*0.9 || m > res.IdealMillis*1.15 {
		t.Fatalf("QuaSAQ high-contention mean %.2f strayed from ideal %.2f", m, res.IdealMillis)
	}
	// QuaSAQ's delays barely change across contention (Table 2: 42.16 vs
	// 42.25 ms).
	drift := qHigh.InterFrame.Mean() - qLow.InterFrame.Mean()
	if drift < 0 {
		drift = -drift
	}
	if drift > 3 {
		t.Fatalf("QuaSAQ mean drifted %.2f ms across contention", drift)
	}
}

func TestFig5GOPSmoothing(t *testing.T) {
	res := shortFig5(t)
	for _, p := range []DelayPanel{res.Panels[1], res.Panels[3]} { // QuaSAQ panels
		if p.InterGOP.StdDev() >= p.InterFrame.StdDev() {
			t.Fatalf("%s: GOP aggregation did not smooth variance (%.2f vs %.2f)",
				p.Label, p.InterGOP.StdDev(), p.InterFrame.StdDev())
		}
		if m := p.InterGOP.Mean(); m < 600 || m > 660 {
			t.Fatalf("%s: inter-GOP mean %.2f, want ~625.8", p.Label, m)
		}
	}
	// The VDBMS low-contention run shows more GOP-level noise than
	// QuaSAQ's (Table 2: 64.5 vs 10.1).
	if res.Panels[0].InterGOP.StdDev() <= res.Panels[1].InterGOP.StdDev() {
		t.Fatalf("VDBMS low GOP SD %.2f should exceed QuaSAQ low GOP SD %.2f",
			res.Panels[0].InterGOP.StdDev(), res.Panels[1].InterGOP.StdDev())
	}
}

func TestFig5PlayoutContrast(t *testing.T) {
	res := shortFig5(t)
	vHigh, qHigh := res.Panels[2], res.Panels[3]
	// The end-to-end payoff: a client of the unmanaged system rebuffers
	// under high contention; QuaSAQ's client does not.
	if vHigh.Playout.Rebuffers == 0 {
		t.Fatal("VDBMS high-contention playout never stalled")
	}
	if qHigh.Playout.Rebuffers > 1 {
		t.Fatalf("QuaSAQ playout rebuffered %d times", qHigh.Playout.Rebuffers)
	}
}

func TestTable2Format(t *testing.T) {
	res := shortFig5(t)
	rows := Table2(res)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !strings.Contains(rows[0].Experiment, "VDBMS, Low") || !strings.Contains(rows[1].Experiment, "High") {
		t.Fatalf("row order wrong: %v / %v", rows[0].Experiment, rows[1].Experiment)
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "Frame Mean") || !strings.Contains(out, "VDBMS, Low contention") {
		t.Fatalf("format missing pieces:\n%s", out)
	}
	plot := FormatFig5(res)
	if !strings.Contains(plot, "Figure 5") {
		t.Fatal("fig5 format missing header")
	}
}

func shortThroughputConfig() ThroughputConfig {
	return ThroughputConfig{Seed: 11, Horizon: simtime.Seconds(260), Bucket: simtime.Seconds(20)}
}

func TestFig6Shape(t *testing.T) {
	series, err := RunFig6(shortThroughputConfig())
	if err != nil {
		t.Fatal(err)
	}
	vdbms, qosapi, quasaq := series[0], series[1], series[2]

	// Figure 6a: VDBMS keeps by far the most outstanding sessions (it
	// admits everything); QuaSAQ sustains clearly more than VDBMS+QoS API.
	if vdbms.SteadyOutstanding() <= 1.5*quasaq.SteadyOutstanding() {
		t.Fatalf("VDBMS outstanding %.1f not >> QuaSAQ %.1f",
			vdbms.SteadyOutstanding(), quasaq.SteadyOutstanding())
	}
	ratio := quasaq.SteadyOutstanding() / qosapi.SteadyOutstanding()
	if ratio < 1.4 {
		t.Fatalf("QuaSAQ/QoSAPI outstanding ratio = %.2f, paper reports ~1.75", ratio)
	}
	// VDBMS never rejects; the reserved systems must reject under this
	// overload.
	if vdbms.Rejected != 0 {
		t.Fatalf("VDBMS rejected %d queries", vdbms.Rejected)
	}
	if qosapi.Rejected == 0 || quasaq.Rejected == 0 {
		t.Fatal("reserved systems never rejected under overload")
	}
	// Figure 6b: QoS-succeeding completions favor QuaSAQ; VDBMS's
	// unmanaged sessions fail QoS.
	if quasaq.QoSOK <= qosapi.QoSOK {
		t.Fatalf("QuaSAQ QoS-OK %d not above QoSAPI %d", quasaq.QoSOK, qosapi.QoSOK)
	}
	if vdbms.Completed > 0 && float64(vdbms.QoSOK) > 0.3*float64(vdbms.Completed) {
		t.Fatalf("VDBMS QoS-OK %d/%d too healthy for an overloaded unmanaged system",
			vdbms.QoSOK, vdbms.Completed)
	}
}

func TestFig7Shape(t *testing.T) {
	cfg := shortThroughputConfig()
	cfg.Seed = 13
	series, err := RunFig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	random, lrb := series[0], series[1]
	// Figure 7a: LRB sustains more sessions (paper: 27-89% more).
	if lrb.SteadyOutstanding() <= random.SteadyOutstanding() {
		t.Fatalf("LRB outstanding %.1f not above random %.1f",
			lrb.SteadyOutstanding(), random.SteadyOutstanding())
	}
	// Figure 7b: LRB rejects fewer queries.
	if lrb.Rejected >= random.Rejected {
		t.Fatalf("LRB rejects %d not below random %d", lrb.Rejected, random.Rejected)
	}
	if len(lrb.CumRejects) == 0 || lrb.CumRejects[len(lrb.CumRejects)-1] != float64(lrb.Rejected) {
		t.Fatal("cumulative reject series inconsistent")
	}
}

func TestThroughputSeriesShape(t *testing.T) {
	s, err := RunThroughput(SysQuaSAQ, shortThroughputConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Outstanding) != len(s.SucceededPM) || len(s.Outstanding) != len(s.CumRejects) {
		t.Fatalf("series lengths differ: %d %d %d",
			len(s.Outstanding), len(s.SucceededPM), len(s.CumRejects))
	}
	if s.Queries != s.Admitted+s.Rejected {
		t.Fatalf("query accounting: %d != %d + %d", s.Queries, s.Admitted, s.Rejected)
	}
	out := FormatThroughput("test", []*Series{s})
	if !strings.Contains(out, "VDBMS+QuaSAQ") {
		t.Fatal("format missing system name")
	}
}

func TestSingleCopyAblationHurtsQuaSAQ(t *testing.T) {
	cfg := shortThroughputConfig()
	full, err := RunThroughput(SysQuaSAQ, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SingleCopy = true
	single, err := RunThroughput(SysQuaSAQ, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Without the replica ladder QuaSAQ must serve originals (often
	// remotely or transcoded), sustaining fewer sessions: the paper's
	// claim that QoS-specific replication drives the §5.2 gains.
	if single.SteadyOutstanding() >= full.SteadyOutstanding() {
		t.Fatalf("single-copy outstanding %.1f not below full replication %.1f",
			single.SteadyOutstanding(), full.SteadyOutstanding())
	}
}

func TestOverhead(t *testing.T) {
	r, err := RunOverhead(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if r.PlansPerQuery <= 0 {
		t.Fatal("no plans counted")
	}
	// Planning must be cheap: well under a millisecond per query on
	// modern hardware (the paper reported "a few ms" on a 2002 machine).
	if r.PlanMicrosPerQry > 5000 {
		t.Fatalf("planning cost %.0f us per query is too high", r.PlanMicrosPerQry)
	}
	// Scheduler overhead should land in the low single-digit percent
	// (paper: 1.6%).
	if r.SchedulerOverhead <= 0 || r.SchedulerOverhead > 0.08 {
		t.Fatalf("scheduler overhead = %.4f, want ~0.016", r.SchedulerOverhead)
	}
	out := FormatOverhead(r)
	if !strings.Contains(out, "1.6%") {
		t.Fatal("format missing paper reference")
	}
}

func TestStreamCPUShareCalibration(t *testing.T) {
	share := StreamCPUShare()
	if share < 0.01 || share > 0.05 {
		t.Fatalf("full-quality stream CPU share = %.4f, want ~0.023", share)
	}
}
