package experiments

import (
	"fmt"

	"quasaq/internal/runner"
)

// This file adapts every experiment to the runner.Scenario contract: each
// experiment names its grid of hermetic (point × replica) cells, and the
// runner fans them out to a worker pool and folds replicas back together in
// canonical order. The Run* functions below are the serial-compatible entry
// points; the Run*Parallel variants accept runner.Options and are what
// qsqbench's -parallel/-replicas flags drive. Replica 0 always runs the
// config's own seed, so a single-replica sweep is byte-identical to the old
// serial drivers.

// ThroughputVariant is one point of a throughput sweep: a delivery system
// plus the replication ablation toggle.
type ThroughputVariant struct {
	Key        string
	Label      string // display name; Sys.String() when empty
	Sys        SystemKind
	SingleCopy bool
}

// ThroughputScenario sweeps RunThroughput over a set of system variants
// under one workload config. All variants of one replica share the same
// seed, so cross-system comparisons stay paired exactly as the paper's
// "identical query streams" protocol demands.
type ThroughputScenario struct {
	ScenarioName string
	Cfg          ThroughputConfig
	Variants     []ThroughputVariant
}

// Name implements runner.Scenario.
func (s *ThroughputScenario) Name() string { return s.ScenarioName }

// Points implements runner.Scenario.
func (s *ThroughputScenario) Points() []runner.Point {
	pts := make([]runner.Point, len(s.Variants))
	for i, v := range s.Variants {
		label := v.Label
		if label == "" {
			label = v.Sys.String()
		}
		pts[i] = runner.Point{Key: v.Key, Label: label}
	}
	return pts
}

// Run implements runner.Scenario: one hermetic RunThroughput world.
func (s *ThroughputScenario) Run(p runner.Point, seed int64) (*Series, error) {
	for _, v := range s.Variants {
		if v.Key != p.Key {
			continue
		}
		cfg := s.Cfg
		cfg.Seed = seed
		cfg.SingleCopy = cfg.SingleCopy || v.SingleCopy
		out, err := RunThroughput(v.Sys, cfg)
		if err != nil {
			return nil, err
		}
		if v.Label != "" {
			out.Name = v.Label
		}
		return out, nil
	}
	return nil, fmt.Errorf("experiments: unknown throughput variant %q", p.Key)
}

// NewFig6Scenario is Figure 6's grid: the three systems of the paper.
func NewFig6Scenario(cfg ThroughputConfig) *ThroughputScenario {
	return &ThroughputScenario{ScenarioName: "fig6", Cfg: cfg, Variants: []ThroughputVariant{
		{Key: "vdbms", Sys: SysVDBMS},
		{Key: "qosapi", Sys: SysQoSAPI},
		{Key: "quasaq", Sys: SysQuaSAQ},
	}}
}

// NewFig7Scenario is Figure 7's grid: randomized vs LRB plan selection.
func NewFig7Scenario(cfg ThroughputConfig) *ThroughputScenario {
	return &ThroughputScenario{ScenarioName: "fig7", Cfg: cfg, Variants: []ThroughputVariant{
		{Key: "random", Sys: SysQuaSAQRandom},
		{Key: "lrb", Sys: SysQuaSAQ},
	}}
}

// NewAblationScenario is the cost-model and replication ablation grid.
func NewAblationScenario(cfg ThroughputConfig) *ThroughputScenario {
	return &ThroughputScenario{ScenarioName: "ablation", Cfg: cfg, Variants: []ThroughputVariant{
		{Key: "lrb", Sys: SysQuaSAQ},
		{Key: "random", Sys: SysQuaSAQRandom},
		{Key: "minsum", Sys: SysQuaSAQMinSum},
		{Key: "static", Sys: SysQuaSAQStatic},
		{Key: "single-copy", Label: "QuaSAQ (single-copy)", Sys: SysQuaSAQ, SingleCopy: true},
	}}
}

// NewThroughputScenario is the full system sweep: every delivery system and
// cost model under one workload, the widest grid qsqbench offers
// (-exp throughput).
func NewThroughputScenario(cfg ThroughputConfig) *ThroughputScenario {
	return &ThroughputScenario{ScenarioName: "throughput", Cfg: cfg, Variants: []ThroughputVariant{
		{Key: "vdbms", Sys: SysVDBMS},
		{Key: "qosapi", Sys: SysQoSAPI},
		{Key: "quasaq", Sys: SysQuaSAQ},
		{Key: "random", Sys: SysQuaSAQRandom},
		{Key: "minsum", Sys: SysQuaSAQMinSum},
		{Key: "static", Sys: SysQuaSAQStatic},
	}}
}

// runSeriesSweep executes a throughput scenario and returns the merged
// series in point order.
func runSeriesSweep(sc *ThroughputScenario, opts runner.Options) ([]*Series, error) {
	opts.Seed = sc.Cfg.Seed
	prs, err := runner.Sweep[*Series](sc, opts)
	if err != nil {
		return nil, err
	}
	out := make([]*Series, len(prs))
	for i, pr := range prs {
		out[i] = pr.Result
	}
	return out, nil
}

// RunSweep executes any throughput scenario under the given options.
func RunSweep(sc *ThroughputScenario, opts runner.Options) ([]*Series, error) {
	return runSeriesSweep(sc, opts)
}

// RunFig6Parallel is RunFig6 with worker-pool and replica control.
func RunFig6Parallel(cfg ThroughputConfig, opts runner.Options) ([]*Series, error) {
	return runSeriesSweep(NewFig6Scenario(cfg), opts)
}

// RunFig7Parallel is RunFig7 with worker-pool and replica control.
func RunFig7Parallel(cfg ThroughputConfig, opts runner.Options) ([]*Series, error) {
	return runSeriesSweep(NewFig7Scenario(cfg), opts)
}

// Fig5Scenario sweeps the four Figure 5 panels as independent cells.
type Fig5Scenario struct {
	Cfg Fig5Config
}

// fig5Specs is the canonical panel order of Fig5Result.Panels.
var fig5Specs = []struct {
	key    string
	label  string
	quasaq bool
	loaded bool // high contention
}{
	{"vdbms-low", "VDBMS, Low contention", false, false},
	{"quasaq-low", "VDBMS+QuaSAQ, Low contention", true, false},
	{"vdbms-high", "VDBMS, High contention", false, true},
	{"quasaq-high", "VDBMS+QuaSAQ, High contention", true, true},
}

// Name implements runner.Scenario.
func (s *Fig5Scenario) Name() string { return "fig5" }

// Points implements runner.Scenario.
func (s *Fig5Scenario) Points() []runner.Point {
	pts := make([]runner.Point, len(fig5Specs))
	for i, sp := range fig5Specs {
		pts[i] = runner.Point{Key: sp.key, Label: sp.label}
	}
	return pts
}

// Run implements runner.Scenario: one traced panel in its own world.
func (s *Fig5Scenario) Run(p runner.Point, seed int64) (*DelayPanel, error) {
	for _, sp := range fig5Specs {
		if sp.key != p.Key {
			continue
		}
		cfg := s.Cfg
		cfg.Seed = seed
		contention := 0
		if sp.loaded {
			contention = cfg.Contention
		}
		return runFig5Panel(cfg, sp.quasaq, contention, sp.label)
	}
	return nil, fmt.Errorf("experiments: unknown fig5 panel %q", p.Key)
}

// RunFig5Parallel is RunFig5 with worker-pool and replica control.
func RunFig5Parallel(cfg Fig5Config, opts runner.Options) (*Fig5Result, error) {
	if cfg.Frames <= 0 {
		cfg.Frames = 1000
	}
	opts.Seed = cfg.Seed
	prs, err := runner.Sweep[*DelayPanel](&Fig5Scenario{Cfg: cfg}, opts)
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{}
	for i, pr := range prs {
		res.Panels[i] = *pr.Result
	}
	res.IdealMillis = idealMillis(cfg.Seed)
	return res, nil
}

// ChaosScenario runs the fault-injection experiment as a single point; the
// sweep dimension is the replicas, each driving the same fault schedule
// with an independently seeded workload.
type ChaosScenario struct {
	Cfg ChaosConfig
}

// Name implements runner.Scenario.
func (s *ChaosScenario) Name() string { return "chaos" }

// Points implements runner.Scenario.
func (s *ChaosScenario) Points() []runner.Point {
	return []runner.Point{{Key: "chaos", Label: "faults + failover"}}
}

// Run implements runner.Scenario.
func (s *ChaosScenario) Run(_ runner.Point, seed int64) (*ChaosResult, error) {
	cfg := s.Cfg
	cfg.Seed = seed
	return RunChaos(cfg)
}

// RunChaosParallel is RunChaos with replica fan-out: counters and metric
// registries fold across replicas while the event log stays replica 0's.
func RunChaosParallel(cfg ChaosConfig, opts runner.Options) (*ChaosResult, error) {
	opts.Seed = cfg.Seed
	prs, err := runner.Sweep[*ChaosResult](&ChaosScenario{Cfg: cfg}, opts)
	if err != nil {
		return nil, err
	}
	return prs[0].Result, nil
}

// DynamicPoint is one configuration of the dynamic-replication comparison:
// its throughput series plus the replicator's own outcomes (zero for the
// static configurations).
type DynamicPoint struct {
	Series          *Series
	ReplicasCreated int
	AdmitFirstHalf  float64
	AdmitSecondHalf float64
	// Replicas counts merged replica runs (0 or 1 means a single run).
	Replicas int
}

func (d *DynamicPoint) reps() int {
	if d.Replicas < 1 {
		return 1
	}
	return d.Replicas
}

// Merge folds another replica's point in: series merge, replica-count sums,
// and replica-weighted admission-rate means.
func (d *DynamicPoint) Merge(o *DynamicPoint) {
	ra, rb := float64(d.reps()), float64(o.reps())
	d.Series.Merge(o.Series)
	d.ReplicasCreated += o.ReplicasCreated
	d.AdmitFirstHalf = (d.AdmitFirstHalf*ra + o.AdmitFirstHalf*rb) / (ra + rb)
	d.AdmitSecondHalf = (d.AdmitSecondHalf*ra + o.AdmitSecondHalf*rb) / (ra + rb)
	d.Replicas = d.reps() + o.reps()
}

// DynamicScenario compares single-copy storage with and without the online
// replicator against offline full replication.
type DynamicScenario struct {
	Cfg ThroughputConfig
}

// Name implements runner.Scenario.
func (s *DynamicScenario) Name() string { return "dynamic" }

// Points implements runner.Scenario. The order matches DynamicResult's
// fields: static single-copy, dynamic single-copy, full ladder.
func (s *DynamicScenario) Points() []runner.Point {
	return []runner.Point{
		{Key: "single-static", Label: "single-copy, static"},
		{Key: "single-dynamic", Label: "single-copy + dynamic"},
		{Key: "full", Label: "offline full ladder"},
	}
}

// Run implements runner.Scenario.
func (s *DynamicScenario) Run(p runner.Point, seed int64) (*DynamicPoint, error) {
	cfg := s.Cfg
	cfg.Seed = seed
	switch p.Key {
	case "single-static":
		cfg.SingleCopy = true
		series, err := RunThroughput(SysQuaSAQ, cfg)
		if err != nil {
			return nil, err
		}
		return &DynamicPoint{Series: series}, nil
	case "full":
		series, err := RunThroughput(SysQuaSAQ, cfg)
		if err != nil {
			return nil, err
		}
		return &DynamicPoint{Series: series}, nil
	case "single-dynamic":
		return runDynamicSingle(cfg)
	default:
		return nil, fmt.Errorf("experiments: unknown dynamic variant %q", p.Key)
	}
}

// RunDynamicReplicationParallel is RunDynamicReplication with worker-pool
// and replica control.
func RunDynamicReplicationParallel(cfg ThroughputConfig, opts runner.Options) (*DynamicResult, error) {
	opts.Seed = cfg.Seed
	prs, err := runner.Sweep[*DynamicPoint](&DynamicScenario{Cfg: cfg}, opts)
	if err != nil {
		return nil, err
	}
	static, dynamic, full := prs[0].Result, prs[1].Result, prs[2].Result
	return &DynamicResult{
		StaticSingle:           static.Series,
		DynamicSingle:          dynamic.Series,
		FullReplica:            full.Series,
		ReplicasCreated:        dynamic.ReplicasCreated / dynamic.reps(),
		DynamicAdmitFirstHalf:  dynamic.AdmitFirstHalf,
		DynamicAdmitSecondHalf: dynamic.AdmitSecondHalf,
	}, nil
}

// OverheadScenario times the planner and scheduler bookkeeping; replicas
// rerun the measurement on independent workload seeds and average.
type OverheadScenario struct {
	Seed    int64
	Queries int
}

// Name implements runner.Scenario.
func (s *OverheadScenario) Name() string { return "overhead" }

// Points implements runner.Scenario.
func (s *OverheadScenario) Points() []runner.Point {
	return []runner.Point{{Key: "overhead", Label: "planner + scheduler overhead"}}
}

// Run implements runner.Scenario.
func (s *OverheadScenario) Run(_ runner.Point, seed int64) (*OverheadResult, error) {
	return RunOverhead(seed, s.Queries)
}

// RunOverheadParallel is RunOverhead with replica fan-out.
func RunOverheadParallel(seed int64, queries int, opts runner.Options) (*OverheadResult, error) {
	opts.Seed = seed
	prs, err := runner.Sweep[*OverheadResult](&OverheadScenario{Seed: seed, Queries: queries}, opts)
	if err != nil {
		return nil, err
	}
	return prs[0].Result, nil
}
