package experiments

import (
	"bytes"
	"testing"

	"quasaq/internal/runner"
	"quasaq/internal/simtime"
)

// detTranscodeCfg shrinks the default sweep to a test-sized horizon.
func detTranscodeCfg() TranscodeConfig {
	cfg := DefaultTranscodeConfig()
	cfg.Horizon = simtime.Seconds(40)
	return cfg
}

// TestTranscodeCSVDeterministic pins the workers=1 vs workers=8 contract
// for the farm sweep: the Pareto CSV must be byte-identical regardless of
// the worker-pool size.
func TestTranscodeCSVDeterministic(t *testing.T) {
	assertDeterministic(t, "transcode", func(t *testing.T, workers int) []byte {
		points, err := RunTranscodeParallel(detTranscodeCfg(), runner.Options{Workers: workers, Replicas: 2})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteTranscodeCSV(&buf, points); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	})
}

// TestTranscodeNeutralMatchesFlat is the experiment-level golden gate: the
// neutral farm variant must admit, complete, and QoS-satisfy exactly the
// deliveries the flat (inline) baseline does — the farm only adds its own
// job counters.
func TestTranscodeNeutralMatchesFlat(t *testing.T) {
	cfg := detTranscodeCfg()
	flat, err := RunTranscodePoint(cfg, "flat", cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	neutral, err := RunTranscodePoint(cfg, "neutral", cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Queries != neutral.Queries || flat.Admitted != neutral.Admitted ||
		flat.Rejected != neutral.Rejected || flat.Completed != neutral.Completed ||
		flat.QoSOK != neutral.QoSOK || flat.Failed != neutral.Failed {
		t.Fatalf("neutral farm diverged from flat baseline:\nflat:    %+v\nneutral: %+v", flat, neutral)
	}
	if flat.FarmRouted != 0 || flat.Farm.Jobs != 0 {
		t.Fatalf("flat baseline routed through a farm: %+v", flat)
	}
	if neutral.Farm.Jobs == 0 || neutral.FarmRouted == 0 {
		t.Fatalf("neutral farm carried no jobs: %+v", neutral.Farm)
	}
	if neutral.Farm.DeadlineMiss != 0 || neutral.Farm.Dollars != 0 {
		t.Fatalf("neutral farm missed deadlines or billed dollars: %+v", neutral.Farm)
	}
}

// TestTranscodeSweepShape sanity-checks the full default sweep: every
// variant settles, non-neutral fleets bill dollars, and the fast fleet's
// p99 startup beats the econ fleet's.
func TestTranscodeSweepShape(t *testing.T) {
	cfg := detTranscodeCfg()
	points, err := RunTranscode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(cfg.Variants) {
		t.Fatalf("got %d points, want %d", len(points), len(cfg.Variants))
	}
	byKey := map[string]*TranscodePoint{}
	for _, p := range points {
		byKey[p.Variant] = p
		if p.Queries == 0 || p.Admitted == 0 {
			t.Fatalf("%s: empty run %+v", p.Variant, p)
		}
	}
	fast, econ := byKey["fast"], byKey["econ"]
	if fast.Farm.Dollars <= 0 || econ.Farm.Dollars <= 0 {
		t.Fatalf("priced fleets billed nothing: fast=%.4f econ=%.4f", fast.Farm.Dollars, econ.Farm.Dollars)
	}
	if fast.Farm.Dollars <= econ.Farm.Dollars {
		t.Fatalf("fast fleet (%.4f) should cost more than econ (%.4f)", fast.Farm.Dollars, econ.Farm.Dollars)
	}
	if fp, ep := fast.Startup.Percentile(99), econ.Startup.Percentile(99); fp >= ep {
		t.Fatalf("fast p99 startup %.1f ms should beat econ %.1f ms", fp, ep)
	}
}
