package experiments

import (
	"fmt"
	"strings"

	"quasaq/internal/core"
	"quasaq/internal/faults"
	"quasaq/internal/media"
	"quasaq/internal/obs"
	"quasaq/internal/replication"
	"quasaq/internal/simtime"
	"quasaq/internal/workload"
)

// The chaos experiment stresses the delivery pipeline with a deterministic
// fault schedule: nodes crash and restart, links degrade and partition,
// while the paper's workload keeps arriving. With failover enabled the
// quality manager should resume interrupted streams on alternate replicas;
// the experiment measures how well it does — failover latency, frames lost
// during the gap, and the reject rate under faults.

// ChaosConfig parameterizes a chaos run.
type ChaosConfig struct {
	Seed     int64
	Horizon  simtime.Time
	Schedule faults.Schedule
	Policy   core.FailoverPolicy
	// Trace records per-session pipeline spans; export the result's Trace
	// as Chrome trace_event JSON to see admissions, streams, and failovers
	// on one timeline.
	Trace bool
}

// DefaultChaosConfig crashes one replica site mid-run (restarting it
// later) and transiently degrades another site's link, under the default
// heartbeat-and-backoff failover policy with best-effort fallback.
func DefaultChaosConfig() ChaosConfig {
	pol := core.DefaultFailoverPolicy()
	pol.BestEffortFallback = true
	return ChaosConfig{
		Seed:     29,
		Horizon:  simtime.Seconds(600),
		Schedule: DefaultChaosSchedule(),
		Policy:   pol,
	}
}

// DefaultChaosSchedule is the canonical fault plan: srv-b crashes at 120 s
// and returns at 300 s; srv-a's link runs at half capacity between 150 s
// and 250 s; srv-c suffers a brief partition at 400 s.
func DefaultChaosSchedule() faults.Schedule {
	return faults.Schedule{
		{At: simtime.Seconds(120), Kind: faults.NodeCrash, Target: "srv-b"},
		{At: simtime.Seconds(150), Kind: faults.LinkDegrade, Target: "srv-a", Factor: 0.5},
		{At: simtime.Seconds(250), Kind: faults.LinkRestore, Target: "srv-a"},
		{At: simtime.Seconds(300), Kind: faults.NodeRestart, Target: "srv-b"},
		{At: simtime.Seconds(400), Kind: faults.LinkPartition, Target: "srv-c"},
		{At: simtime.Seconds(420), Kind: faults.LinkRestore, Target: "srv-c"},
	}
}

// ChaosResult aggregates one chaos run.
type ChaosResult struct {
	Queries   int
	Admitted  int
	Rejected  int
	Completed int // finished cleanly (including resumed-after-failover)
	QoSOK     int
	Abandoned int // admitted but lost to faults beyond recovery

	Stats    core.ManagerStats
	Events   []core.FailoverEvent // concluded recoveries, in sim order (replica 0's)
	FaultLog []faults.Record      // what the injector actually applied (replica 0's)
	Trace    *obs.Tracer          // non-nil when ChaosConfig.Trace was set (replica 0's)
	Metrics  *obs.Registry        // cluster-wide metrics, folded across replicas

	// Replicas counts merged replica runs (0 or 1 means a single run).
	Replicas int
}

// Merge folds another replica's chaos run into r: outcome counters,
// manager statistics, and the metrics registries add up, while the event
// log, fault log, and trace stay replica 0's — every replica applies the
// identical fault schedule, so one canonical incident log suffices.
func (r *ChaosResult) Merge(o *ChaosResult) {
	r.Queries += o.Queries
	r.Admitted += o.Admitted
	r.Rejected += o.Rejected
	r.Completed += o.Completed
	r.QoSOK += o.QoSOK
	r.Abandoned += o.Abandoned
	r.Stats.Merge(o.Stats)
	if err := r.Metrics.Merge(o.Metrics); err != nil {
		// Replicas run identical configs, so their registries always share
		// one metric layout; a mismatch is a programming error.
		panic(fmt.Sprintf("experiments: chaos replica metrics merge: %v", err))
	}
	if r.Replicas < 1 {
		r.Replicas = 1
	}
	if o.Replicas < 1 {
		r.Replicas++
	} else {
		r.Replicas += o.Replicas
	}
}

// MeanFailoverLatencySeconds is the average failure-to-resume time over
// successful failovers.
func (r *ChaosResult) MeanFailoverLatencySeconds() float64 {
	if r.Stats.Failovers == 0 {
		return 0
	}
	return simtime.ToSeconds(r.Stats.FailoverLatencyTotal) / float64(r.Stats.Failovers)
}

// RejectRate is rejected queries over all queries.
func (r *ChaosResult) RejectRate() float64 {
	if r.Queries == 0 {
		return 0
	}
	return float64(r.Rejected) / float64(r.Queries)
}

// RunChaos drives the paper's workload against the testbed while the fault
// schedule fires, with mid-stream failover enabled. Same config -> same
// result: the workload, the schedule, and recovery are all deterministic.
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	if err := cfg.Schedule.Validate(); err != nil {
		return nil, err
	}
	sim := simtime.NewSimulator()
	cluster := core.TestbedCluster(sim)
	corpus := media.StandardCorpus(uint64(cfg.Seed))
	if _, err := cluster.LoadCorpus(corpus, replication.DefaultPolicy()); err != nil {
		return nil, err
	}

	res := &ChaosResult{}
	mgr := core.NewManager(cluster, core.LRB{})
	if cfg.Trace {
		mgr.EnableTracing()
	}
	mgr.EnableFailover(cfg.Policy)
	mgr.SetFailoverObserver(func(ev core.FailoverEvent) {
		res.Events = append(res.Events, ev)
	})

	in := faults.NewInjector(sim)
	for _, site := range cluster.Sites() {
		in.RegisterNode(cluster.Nodes[site])
	}
	if err := in.Apply(cfg.Schedule); err != nil {
		return nil, err
	}

	gen := paperWorkload(cfg.Seed, cluster, corpus)
	gen.Drive(sim, cfg.Horizon, func(r workload.Request) {
		res.Queries++
		if _, err := mgr.Service(r.Site, r.Video, r.Req, core.ServiceOptions{
			OnDone: func(d *core.Delivery) {
				res.Completed++
				if d.Session.QoSOK() {
					res.QoSOK++
				}
			},
			OnFailed: func(*core.Delivery, error) { res.Abandoned++ },
		}); err != nil {
			res.Rejected++
		} else {
			res.Admitted++
		}
	})
	sim.RunUntil(cfg.Horizon)

	res.Stats = mgr.Stats()
	res.FaultLog = in.Log()
	res.Trace = mgr.Tracer()
	res.Metrics = mgr.Registry()
	return res, nil
}

// FormatChaos renders the run the way an operator would read an incident
// report: what broke, what recovered, and what it cost.
func FormatChaos(r *ChaosResult) string {
	var b strings.Builder
	b.WriteString("Chaos: workload under fault injection with mid-stream failover\n\n")
	b.WriteString("Faults applied:\n")
	for _, rec := range r.FaultLog {
		status := "applied"
		if !rec.Applied {
			status = "no-op"
		}
		fmt.Fprintf(&b, "  %-40s %s\n", rec.Event.String(), status)
	}
	if r.Replicas > 1 {
		fmt.Fprintf(&b, "\nTotals over %d replicas (event log below is replica 0's):\n", r.Replicas)
	}
	fmt.Fprintf(&b, "\nQueries %d  admitted %d  rejected %d (%.1f%%)  completed %d  QoS-OK %d  abandoned %d\n",
		r.Queries, r.Admitted, r.Rejected, 100*r.RejectRate(), r.Completed, r.QoSOK, r.Abandoned)
	s := r.Stats
	fmt.Fprintf(&b, "Session failures %d  failover attempts %d  failovers %d  retries %d  best-effort %d  rejects %d\n",
		s.SessionFailures, s.FailoverAttempts, s.Failovers, s.FailoverRetries, s.BestEffortFallbacks, s.FailoverRejects)
	fmt.Fprintf(&b, "Mean failover latency %.3f s  frames lost in failover %.1f\n",
		r.MeanFailoverLatencySeconds(), s.FramesLostInFailover)
	if len(r.Events) > 0 {
		b.WriteString("\nRecoveries:\n")
		fmt.Fprintf(&b, "  %8s %6s %-8s %-8s %10s %8s %8s %s\n",
			"t(s)", "video", "from", "to", "latency(s)", "frames", "attempts", "outcome")
		for _, ev := range r.Events {
			fmt.Fprintf(&b, "  %8.2f %6d %-8s %-8s %10.3f %8.1f %8d %s\n",
				simtime.ToSeconds(ev.At), ev.Video, ev.FromSite, orDash(ev.ToSite),
				simtime.ToSeconds(ev.Latency), ev.Frames, ev.Attempts, outcomeOf(ev))
		}
	}
	return b.String()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func outcomeOf(ev core.FailoverEvent) string {
	switch {
	case ev.Err != nil:
		return "abandoned"
	case ev.Degraded:
		return "best-effort"
	default:
		return "resumed"
	}
}
