package experiments

import (
	"bytes"
	"strings"
	"testing"

	"quasaq/internal/runner"
	"quasaq/internal/simtime"
	"quasaq/internal/workload"
)

// detSLACfg shrinks the default sweep to two tiers and a short ramp so the
// determinism pin stays cheap.
func detSLACfg() SLAConfig {
	cfg := DefaultSLAConfig()
	cfg.Phases = []workload.Phase{
		{Rate: 1, Duration: simtime.Seconds(15)},
		{Rate: 8, Duration: simtime.Seconds(40)},
		{Rate: 1, Duration: simtime.Seconds(15)},
	}
	cfg.Tiers = []SLATier{cfg.Tiers[0], cfg.Tiers[3]} // none + gold
	return cfg
}

func TestSLACSVDeterministic(t *testing.T) {
	assertDeterministic(t, "sla", func(t *testing.T, workers int) []byte {
		points, err := RunSLAParallel(detSLACfg(), runner.Options{Workers: workers, Replicas: 2})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteSLACSV(&buf, points); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	})
}

func TestSLATierSemantics(t *testing.T) {
	points, err := RunSLA(detSLACfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	none, gold := points[0], points[1]
	if none.Tier != "none" || gold.Tier != "gold" {
		t.Fatalf("tier order = %s,%s", none.Tier, gold.Tier)
	}
	if none.Clause != "any" {
		t.Fatalf("control clause rendered %q", none.Clause)
	}
	if !strings.Contains(gold.Clause, "throughput >= 90000") {
		t.Fatalf("gold clause lost canonical terms: %q", gold.Clause)
	}
	// Without net terms nothing can be clause-unsatisfiable; with the gold
	// clause the admission gate must turn some rejections into typed ones.
	if none.Unsatisfiable != 0 {
		t.Fatalf("clause-free tier counted %d unsatisfiable", none.Unsatisfiable)
	}
	if gold.Unsatisfiable == 0 {
		t.Fatal("gold tier never hit ErrQoSUnsatisfiable under congestion")
	}
	for _, p := range points {
		if p.Queries == 0 || p.Admitted == 0 {
			t.Fatalf("%s: degenerate run %+v", p.Tier, p)
		}
		if p.QoERows != p.QoEViolations+p.QoERecovered {
			t.Fatalf("%s: qoe rows %d != violations %d + recovered %d",
				p.Tier, p.QoERows, p.QoEViolations, p.QoERecovered)
		}
		// The persisted history must agree with the in-process counters:
		// every declared violation wrote a row.
		if uint64(p.QoEViolations) != p.Guardian.Violations {
			t.Fatalf("%s: engine saw %d violation rows, guardian declared %d",
				p.Tier, p.QoEViolations, p.Guardian.Violations)
		}
		if p.Guardian.QoERecords != uint64(p.QoERows) {
			t.Fatalf("%s: guardian appended %d rows, engine holds %d",
				p.Tier, p.Guardian.QoERecords, p.QoERows)
		}
		perMetric := p.Guardian.LossViolations + p.Guardian.DelayViolations +
			p.Guardian.JitterViolations + p.Guardian.ThroughputViolations
		if perMetric != p.Guardian.Violations {
			t.Fatalf("%s: per-metric counters %d don't sum to violations %d",
				p.Tier, perMetric, p.Guardian.Violations)
		}
	}
}

func TestSLAUnknownTierAndBadClause(t *testing.T) {
	cfg := detSLACfg()
	if _, err := RunSLAPoint(cfg, "platinum", 1); err == nil {
		t.Fatal("unknown tier accepted")
	}
	cfg.Tiers = append(cfg.Tiers, SLATier{Name: "broken", Clause: "delay >= 10"})
	if _, err := RunSLAPoint(cfg, "broken", 1); err == nil {
		t.Fatal("wrong-direction clause accepted")
	}
}
