package experiments

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"quasaq/internal/broker"
	"quasaq/internal/gara"
	"quasaq/internal/obs"
	"quasaq/internal/qos"
	"quasaq/internal/runner"
	"quasaq/internal/simtime"
	"quasaq/internal/stats"
	"quasaq/internal/vsa"
)

// The saturate experiment asks what the admission hot path costs at
// "millions of users" scale, in two passes over one hot site.
//
// The fidelity pass is deterministic and serial: the same Zipf-skewed
// sliding-window session stream is admitted once through the
// broker-serialized slow path (two-phase reservation straight onto the
// gara node) and once through the VSA accumulator, and each run hashes its
// admit/reject sequence. Demands are integral, so the accumulator's fixed
// point converts them exactly and the two hashes must match — that is the
// "byte-identical decisions" acceptance pin, and because it runs through
// the hermetic runner its CSV is identical for any worker count.
//
// The throughput pass is the wall-clock benchmark: many goroutines replay
// the same stream concurrently, baseline mode serializing every admission
// through a global lock around the coordinator (the honest model of a
// single-threaded control plane), vsa mode going lock-free through
// TryAdmit/Release with a periodic committer flush reconciling the
// authoritative books. Its numbers (admissions/sec, decision-latency
// quantiles) are real time and therefore machine-dependent; they are
// archived in the JSON benchmark record and deliberately kept out of the
// CSV so determinism checks stay meaningful.

// SaturateConfig parameterizes both passes.
type SaturateConfig struct {
	Seed       int64
	Sessions   int     // total session arrivals per run
	Live       int     // sliding-window size: admitting session i releases session i-Live
	Goroutines int     // throughput pass: concurrent admission loops
	ZipfS      float64 // video-popularity skew exponent (>1)
	Videos     int     // distinct videos behind the Zipf draw
	FlushEvery int     // vsa throughput mode: committer flush cadence, in admissions
}

// DefaultSaturateConfig drives 100k concurrent-window sessions: a 20k-deep
// window over 100k arrivals with textbook 1.1 Zipf skew across 512 titles.
func DefaultSaturateConfig() SaturateConfig {
	return SaturateConfig{
		Seed:       11,
		Sessions:   100_000,
		Live:       20_000,
		Goroutines: 8,
		ZipfS:      1.1,
		Videos:     512,
		FlushEvery: 64,
	}
}

func (c SaturateConfig) validate() error {
	if c.Sessions <= 0 {
		return fmt.Errorf("experiments: saturate needs sessions > 0")
	}
	if c.Live <= 0 || c.Live > c.Sessions {
		return fmt.Errorf("experiments: saturate window %d outside (0, %d]", c.Live, c.Sessions)
	}
	if c.Videos <= 0 || c.ZipfS <= 1 {
		return fmt.Errorf("experiments: saturate needs videos > 0 and zipf s > 1")
	}
	return nil
}

func (c SaturateConfig) goroutines() int {
	if c.Goroutines <= 0 {
		return 1
	}
	return c.Goroutines
}

func (c SaturateConfig) flushEvery() int {
	if c.FlushEvery <= 0 {
		return 64
	}
	return c.FlushEvery
}

// sessionDemand maps a video to its integral per-session resource vector.
// Units are deliberately scaled — kB/s for the bandwidth axes, MiB for
// memory — so even a million-deep window keeps every axis total under the
// accumulator's exact fixed-point range (~2^32 units at 20 fractional
// bits). Integral values in that range convert exactly, which is what makes
// fixed-point and float admission decisions provably equal; byte-denominated
// capacities at this window depth would clamp and quietly tighten an axis.
func sessionDemand(video int) qos.ResourceVector {
	var v qos.ResourceVector
	v[qos.ResNetBandwidth] = float64(200 + 50*(video%7))  // kB/s
	v[qos.ResDiskBandwidth] = float64(200 + 50*(video%7)) // kB/s
	v[qos.ResMemory] = float64(1 + video%4)               // MiB
	return v
}

// saturateCapacity sizes the hot site so roughly half the sliding window
// fits: the stream then runs permanently saturated and every admission is a
// genuine decision, not a formality. Same scaled units as sessionDemand.
func saturateCapacity(live int) gara.NodeCapacity {
	const meanNet = 350 // kB/s, mid-point of sessionDemand's net axis
	return gara.NodeCapacity{
		NetBandwidth:  float64(live) * meanNet / 2,
		DiskBandwidth: float64(live) * meanNet / 2,
		Memory:        float64(live) * 2.5 / 2, // half the window's mean MiB
	}
}

// saturateStream precomputes the session arrival order: the video (and so
// the demand vector) of every arrival, drawn Zipf-skewed from one derived
// seed so both modes and every goroutine split replay the identical stream.
func saturateStream(cfg SaturateConfig, seed int64) []int {
	rng := simtime.NewRand(simtime.DeriveSeed(seed, "saturate-stream"))
	draw := rng.Zipf(cfg.ZipfS, cfg.Videos)
	videos := make([]int, cfg.Sessions)
	for i := range videos {
		videos[i] = draw()
	}
	return videos
}

// saturateWorld builds the hot site and its synchronous control plane.
func saturateWorld(live int) (*gara.Node, *broker.Coordinator, error) {
	sim := simtime.NewSimulator()
	reg := obs.NewRegistry()
	node := gara.NewNode(sim, "hot", saturateCapacity(live))
	net, err := broker.NewNet(sim, broker.Config{}, reg)
	if err != nil {
		return nil, nil, err
	}
	net.Register("hot", broker.New(sim, node, reg).Handle)
	return node, broker.NewCoordinator(net, reg), nil
}

// SaturatePoint is one fidelity-mode outcome.
type SaturatePoint struct {
	Mode     string
	Sessions int
	Live     int
	Admitted int
	Rejected int
	// DecisionHash is FNV-1a over the admit/reject sequence — the byte-level
	// identity the broker and vsa modes must share.
	DecisionHash uint64
	Replicas     int
}

func (p *SaturatePoint) reps() int {
	if p.Replicas < 1 {
		return 1
	}
	return p.Replicas
}

// Merge folds another replica in: counters sum; the hash stays replica 0's
// canonical sequence (replicas draw different streams by design).
func (p *SaturatePoint) Merge(o *SaturatePoint) {
	p.Sessions += o.Sessions
	p.Admitted += o.Admitted
	p.Rejected += o.Rejected
	p.Replicas = p.reps() + o.reps()
}

// RunSaturatePoint replays the stream serially through one mode and hashes
// every decision.
func RunSaturatePoint(cfg SaturateConfig, mode string, seed int64) (*SaturatePoint, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	videos := saturateStream(cfg, seed)
	out := &SaturatePoint{Mode: mode, Sessions: cfg.Sessions, Live: cfg.Live}
	h := fnv.New64a()
	decide := func(admitted bool) {
		if admitted {
			out.Admitted++
			h.Write([]byte{'A'})
		} else {
			out.Rejected++
			h.Write([]byte{'R'})
		}
	}

	switch mode {
	case "broker":
		node, coord, err := saturateWorld(cfg.Live)
		if err != nil {
			return nil, err
		}
		leases := make([]*gara.Lease, cfg.Sessions)
		for i, v := range videos {
			if old := i - cfg.Live; old >= 0 && leases[old] != nil {
				leases[old].Release()
				leases[old] = nil
			}
			coord.Reserve("hot", []broker.Participant{{
				Site: "hot", Name: "sess", Vec: sessionDemand(v), Period: simtime.Seconds(1),
			}}, nil, func(ls []*gara.Lease, err error) {
				if err == nil {
					leases[i] = ls[0]
				}
				decide(err == nil)
			})
		}
		_ = node
	case "vsa":
		acc := vsa.NewAccumulator(saturateCapacity(cfg.Live).Vector(), 0)
		node, coord, err := saturateWorld(cfg.Live)
		if err != nil {
			return nil, err
		}
		com := vsa.NewCommitter(acc, node, coord, "hot", 0)
		holds := make([]vsa.Hold, cfg.Sessions)
		admitted := make([]bool, cfg.Sessions)
		for i, v := range videos {
			if old := i - cfg.Live; old >= 0 && admitted[old] {
				acc.Release(uint64(old), holds[old])
			}
			holds[i], admitted[i] = acc.TryAdmit(uint64(i), sessionDemand(v))
			decide(admitted[i])
			if i%cfg.flushEvery() == 0 {
				if err := com.Flush(); err != nil {
					return nil, err
				}
			}
		}
	default:
		return nil, fmt.Errorf("experiments: unknown saturate mode %q", mode)
	}
	out.DecisionHash = h.Sum64()
	return out, nil
}

// SaturateScenario runs the two fidelity modes as sweep points.
type SaturateScenario struct {
	Cfg SaturateConfig
}

// Name implements runner.Scenario.
func (s *SaturateScenario) Name() string { return "saturate" }

// Points implements runner.Scenario.
func (s *SaturateScenario) Points() []runner.Point {
	return []runner.Point{
		{Key: "broker", Label: "broker-serialized slow path"},
		{Key: "vsa", Label: "vsa accumulator fast path"},
	}
}

// Run implements runner.Scenario.
func (s *SaturateScenario) Run(p runner.Point, seed int64) (*SaturatePoint, error) {
	return RunSaturatePoint(s.Cfg, p.Key, seed)
}

// RunSaturateParallel sweeps the fidelity pair on the worker pool.
func RunSaturateParallel(cfg SaturateConfig, opts runner.Options) ([]*SaturatePoint, error) {
	opts.Seed = cfg.Seed
	prs, err := runner.Sweep[*SaturatePoint](&SaturateScenario{Cfg: cfg}, opts)
	if err != nil {
		return nil, err
	}
	out := make([]*SaturatePoint, len(prs))
	for i, pr := range prs {
		out[i] = pr.Result
	}
	return out, nil
}

// SaturateTable renders the fidelity pass as tidy CSV. Wall-clock numbers
// are deliberately absent: every column here is deterministic.
func SaturateTable(points []*SaturatePoint) Table {
	t := Table{Header: []string{"mode", "sessions", "live", "admitted", "rejected", "decision_hash"}}
	for _, p := range points {
		reps := p.reps()
		t.Rows = append(t.Rows, []string{
			p.Mode,
			fmtCount(p.Sessions, reps),
			strconv.Itoa(p.Live),
			fmtCount(p.Admitted, reps),
			fmtCount(p.Rejected, reps),
			fmt.Sprintf("%016x", p.DecisionHash),
		})
	}
	return t
}

// SaturateThroughput is one wall-clock benchmark outcome.
type SaturateThroughput struct {
	Mode             string  `json:"mode"`
	Sessions         int     `json:"sessions"`
	Goroutines       int     `json:"goroutines"`
	Admitted         int     `json:"admitted"`
	Rejected         int     `json:"rejected"`
	ElapsedS         float64 `json:"elapsed_s"`
	AdmissionsPerSec float64 `json:"admissions_per_sec"`
	P50us            float64 `json:"decision_p50_us"`
	P99us            float64 `json:"decision_p99_us"`
	MaxUs            float64 `json:"decision_max_us"`
}

// RunSaturateThroughput replays the stream concurrently and times every
// admission decision. The arrival stream is split contiguously across
// goroutines, each running its own sliding window over its share.
func RunSaturateThroughput(cfg SaturateConfig, mode string) (*SaturateThroughput, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if mode != "baseline" && mode != "vsa" {
		return nil, fmt.Errorf("experiments: unknown saturate throughput mode %q", mode)
	}
	videos := saturateStream(cfg, cfg.Seed)
	g := cfg.goroutines()
	window := cfg.Live / g
	if window == 0 {
		window = 1
	}

	node, coord, err := saturateWorld(cfg.Live)
	if err != nil {
		return nil, err
	}
	acc := vsa.NewAccumulator(saturateCapacity(cfg.Live).Vector(), 0)
	com := vsa.NewCommitter(acc, node, coord, "hot", 0)

	// The baseline's global lock is the model of a single-threaded control
	// plane: coordinator state is not concurrency-safe, so every admission
	// waits its turn.
	var ctrlMu sync.Mutex

	type shard struct {
		admitted, rejected int
		lat                *stats.Sample
	}
	shards := make([]shard, g)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < g; w++ {
		w := w
		lo := w * cfg.Sessions / g
		hi := (w + 1) * cfg.Sessions / g
		wg.Add(1)
		go func() {
			defer wg.Done()
			sh := &shards[w]
			sh.lat = &stats.Sample{}
			switch mode {
			case "baseline":
				leases := make([]*gara.Lease, hi-lo)
				ok := make([]bool, hi-lo)
				for i := lo; i < hi; i++ {
					j := i - lo
					t0 := time.Now()
					ctrlMu.Lock()
					if old := j - window; old >= 0 && ok[old] {
						leases[old].Release()
						ok[old] = false
					}
					coord.Reserve("hot", []broker.Participant{{
						Site: "hot", Name: "sess", Vec: sessionDemand(videos[i]), Period: simtime.Seconds(1),
					}}, nil, func(ls []*gara.Lease, err error) {
						if err == nil {
							leases[j], ok[j] = ls[0], true
						}
					})
					ctrlMu.Unlock()
					sh.lat.Add(float64(time.Since(t0).Nanoseconds()) / 1e3)
					if ok[j] {
						sh.admitted++
					} else {
						sh.rejected++
					}
				}
			case "vsa":
				holds := make([]vsa.Hold, hi-lo)
				ok := make([]bool, hi-lo)
				for i := lo; i < hi; i++ {
					j := i - lo
					t0 := time.Now()
					if old := j - window; old >= 0 && ok[old] {
						acc.Release(uint64(i), holds[old])
						ok[old] = false
					}
					holds[j], ok[j] = acc.TryAdmit(uint64(i), sessionDemand(videos[i]))
					sh.lat.Add(float64(time.Since(t0).Nanoseconds()) / 1e3)
					if ok[j] {
						sh.admitted++
					} else {
						sh.rejected++
					}
					if j%cfg.flushEvery() == 0 {
						_ = com.Flush() // retried by later flushes; benchmark world has no faults
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	out := &SaturateThroughput{Mode: mode, Sessions: cfg.Sessions, Goroutines: g, ElapsedS: elapsed}
	lat := &stats.Sample{}
	for i := range shards {
		out.Admitted += shards[i].admitted
		out.Rejected += shards[i].rejected
		for _, x := range shards[i].lat.Values() {
			lat.Add(x)
		}
	}
	if elapsed > 0 {
		out.AdmissionsPerSec = float64(cfg.Sessions) / elapsed
	}
	out.P50us = lat.Percentile(50)
	out.P99us = lat.Percentile(99)
	out.MaxUs = lat.Summary().Max()
	return out, nil
}

// RunSaturateThroughputPair benchmarks both modes back to back.
func RunSaturateThroughputPair(cfg SaturateConfig) ([]*SaturateThroughput, error) {
	var out []*SaturateThroughput
	for _, mode := range []string{"baseline", "vsa"} {
		p, err := RunSaturateThroughput(cfg, mode)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// saturateBench is the archived benchmark record (BENCH_admission_scale.json).
type saturateBench struct {
	Experiment  string                `json:"experiment"`
	Seed        int64                 `json:"seed"`
	Sessions    int                   `json:"sessions"`
	Live        int                   `json:"live"`
	ZipfS       float64               `json:"zipf_s"`
	Videos      int                   `json:"videos"`
	Fidelity    []saturateBenchPoint  `json:"fidelity"`
	HashesMatch bool                  `json:"decision_hashes_match"`
	Throughput  []*SaturateThroughput `json:"throughput"`
	SpeedupX    float64               `json:"admissions_per_sec_speedup_x"`
}

type saturateBenchPoint struct {
	Mode         string `json:"mode"`
	Admitted     int    `json:"admitted"`
	Rejected     int    `json:"rejected"`
	DecisionHash string `json:"decision_hash"`
}

// saturateThroughputMode finds a named throughput mode (nil if absent).
func saturateThroughputMode(ts []*SaturateThroughput, mode string) *SaturateThroughput {
	for _, t := range ts {
		if t.Mode == mode {
			return t
		}
	}
	return nil
}

// WriteSaturateJSON archives both passes as an indented JSON benchmark
// record, with the headline speedup of the vsa path over the
// broker-serialized baseline.
func WriteSaturateJSON(w io.Writer, cfg SaturateConfig, fidelity []*SaturatePoint, throughput []*SaturateThroughput) error {
	b := saturateBench{
		Experiment: "saturate",
		Seed:       cfg.Seed,
		Sessions:   cfg.Sessions,
		Live:       cfg.Live,
		ZipfS:      cfg.ZipfS,
		Videos:     cfg.Videos,
		Throughput: throughput,
	}
	for _, p := range fidelity {
		b.Fidelity = append(b.Fidelity, saturateBenchPoint{
			Mode:         p.Mode,
			Admitted:     p.Admitted,
			Rejected:     p.Rejected,
			DecisionHash: fmt.Sprintf("%016x", p.DecisionHash),
		})
	}
	if len(fidelity) == 2 {
		b.HashesMatch = fidelity[0].DecisionHash == fidelity[1].DecisionHash
	}
	if base, fast := saturateThroughputMode(throughput, "baseline"), saturateThroughputMode(throughput, "vsa"); base != nil && fast != nil && base.AdmissionsPerSec > 0 {
		b.SpeedupX = fast.AdmissionsPerSec / base.AdmissionsPerSec
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// FormatSaturate renders both passes the way an operator reads them:
// fidelity first (do the two paths agree?), then what the fast path buys.
func FormatSaturate(cfg SaturateConfig, fidelity []*SaturatePoint, throughput []*SaturateThroughput) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Saturate: %d sessions, %d-deep window, Zipf s=%.2f over %d videos, one hot site\n\n",
		cfg.Sessions, cfg.Live, cfg.ZipfS, cfg.Videos)
	fmt.Fprintf(&b, "%-8s %10s %10s %10s  %s\n", "mode", "sessions", "admitted", "rejected", "decision_hash")
	for _, p := range fidelity {
		reps := p.reps()
		fmt.Fprintf(&b, "%-8s %10s %10s %10s  %016x\n",
			p.Mode, fmtCount(p.Sessions, reps), fmtCount(p.Admitted, reps), fmtCount(p.Rejected, reps), p.DecisionHash)
	}
	if len(fidelity) == 2 {
		if fidelity[0].DecisionHash == fidelity[1].DecisionHash {
			b.WriteString("\nDecision sequences byte-identical across modes.\n")
		} else {
			b.WriteString("\nWARNING: decision sequences diverged between modes.\n")
		}
	}
	if len(throughput) > 0 {
		fmt.Fprintf(&b, "\n%-9s %11s %12s %14s %12s %12s\n",
			"mode", "goroutines", "elapsed_s", "admissions/s", "p50_us", "p99_us")
		for _, t := range throughput {
			fmt.Fprintf(&b, "%-9s %11d %12.3f %14.0f %12.2f %12.2f\n",
				t.Mode, t.Goroutines, t.ElapsedS, t.AdmissionsPerSec, t.P50us, t.P99us)
		}
		if base, fast := saturateThroughputMode(throughput, "baseline"), saturateThroughputMode(throughput, "vsa"); base != nil && fast != nil && base.AdmissionsPerSec > 0 {
			fmt.Fprintf(&b, "\nVSA fast path: %.1fx the broker-serialized admissions/sec\n",
				fast.AdmissionsPerSec/base.AdmissionsPerSec)
		}
	}
	return b.String()
}
