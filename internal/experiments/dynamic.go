package experiments

import (
	"fmt"
	"strings"

	"quasaq/internal/core"
	"quasaq/internal/media"
	"quasaq/internal/netsim"
	"quasaq/internal/replication"
	"quasaq/internal/runner"
	"quasaq/internal/simtime"
	"quasaq/internal/workload"
)

// DynamicResult compares QuaSAQ starting from single-copy storage with and
// without the online replicator (the §2 item 1 extension): the replicator
// should materialize the demanded quality ladder over time and close most
// of the throughput gap to offline full replication.
type DynamicResult struct {
	StaticSingle    *Series // single-copy, no online replication
	DynamicSingle   *Series // single-copy + online replication
	FullReplica     *Series // offline full ladder (upper reference)
	ReplicasCreated int
	// Halves splits the dynamic run's admission rate: convergence shows as
	// a higher second half.
	DynamicAdmitFirstHalf  float64
	DynamicAdmitSecondHalf float64
}

// RunDynamicReplication runs the three configurations on identical query
// streams. It is the serial-compatible wrapper over the dynamic scenario.
func RunDynamicReplication(cfg ThroughputConfig) (*DynamicResult, error) {
	return RunDynamicReplicationParallel(cfg, runner.Options{})
}

// runDynamicSingle is the hermetic single-copy + online-replication cell:
// it builds its own world (the replicator must be wired into the serving
// path, so it cannot reuse RunThroughput) and reports the replicator's
// outcomes next to the throughput series.
func runDynamicSingle(cfg ThroughputConfig) (*DynamicPoint, error) {
	sim := simtime.NewSimulator()
	cluster := core.TestbedCluster(sim)
	corpus := media.StandardCorpus(uint64(cfg.Seed))
	if _, err := cluster.LoadCorpus(corpus, replication.SingleCopyPolicy()); err != nil {
		return nil, err
	}
	sites := make([]replication.Site, 0, 3)
	for _, s := range cluster.Sites() {
		sites = append(sites, replication.Site{Name: s, Blobs: cluster.Blobs[s]})
	}
	dyn := replication.NewDynamic(sim, cluster.Dir, corpus, sites)
	links := map[string]*netsim.Link{}
	for name, node := range cluster.Nodes {
		links[name] = node.Link()
	}
	dyn.SetLinks(links)
	dyn.Start(simtime.Seconds(20), 4)

	out := &Series{System: SysQuaSAQ, Bucket: cfg.Bucket}
	mgr := core.NewManager(cluster, core.LRB{})
	var admitTimes []simtime.Time
	gen := paperWorkload(cfg.Seed, cluster, corpus)
	gen.Drive(sim, cfg.Horizon, func(r workload.Request) {
		out.Queries++
		dyn.Observe(r.Video, r.Req)
		if _, err := mgr.Service(r.Site, r.Video, r.Req, core.ServiceOptions{
			OnDone: func(d *core.Delivery) {
				out.Completed++
				if d.Session.QoSOK() {
					out.QoSOK++
				}
			},
		}); err != nil {
			out.Rejected++
		} else {
			out.Admitted++
			admitTimes = append(admitTimes, sim.Now())
		}
	})
	samples := int(cfg.Horizon / cfg.Bucket)
	for i := 1; i <= samples; i++ {
		at := simtime.Time(i) * cfg.Bucket
		sim.ScheduleAt(at, func() {
			out.Times = append(out.Times, simtime.ToSeconds(sim.Now()))
			out.Outstanding = append(out.Outstanding, float64(cluster.OutstandingSessions()))
		})
	}
	sim.RunUntil(cfg.Horizon)

	half := cfg.Horizon / 2
	var first, second int
	for _, t := range admitTimes {
		if t < half {
			first++
		} else {
			second++
		}
	}
	halfSecs := simtime.ToSeconds(half)
	return &DynamicPoint{
		Series:          out,
		ReplicasCreated: dyn.Created(),
		AdmitFirstHalf:  float64(first) / halfSecs,
		AdmitSecondHalf: float64(second) / halfSecs,
	}, nil
}

// FormatDynamic renders the comparison.
func FormatDynamic(r *DynamicResult) string {
	var b strings.Builder
	b.WriteString("Dynamic replication (extension of §2 item 1: single-copy start)\n")
	fmt.Fprintf(&b, "%-28s %10s %10s %10s\n", "Configuration", "SteadyOut", "Admitted", "QoS-OK")
	row := func(name string, s *Series) {
		fmt.Fprintf(&b, "%-28s %10.1f %10s %10s\n",
			name, s.SteadyOutstanding(), fmtCount(s.Admitted, s.Reps()), fmtCount(s.QoSOK, s.Reps()))
	}
	row("single-copy, static", r.StaticSingle)
	row("single-copy + dynamic", r.DynamicSingle)
	row("offline full ladder", r.FullReplica)
	fmt.Fprintf(&b, "replicas materialized online: %d\n", r.ReplicasCreated)
	fmt.Fprintf(&b, "dynamic admission rate: %.2f/s first half -> %.2f/s second half\n",
		r.DynamicAdmitFirstHalf, r.DynamicAdmitSecondHalf)
	return b.String()
}
