package experiments

import (
	"bytes"
	"testing"

	"quasaq/internal/runner"
)

func smallSaturateConfig() SaturateConfig {
	cfg := DefaultSaturateConfig()
	cfg.Sessions = 3000
	cfg.Live = 300
	cfg.Goroutines = 4
	cfg.FlushEvery = 16
	return cfg
}

// TestSaturateFidelityHashesMatch is the acceptance pin: the
// broker-serialized slow path and the VSA accumulator must make the exact
// same admit/reject call on every session of a saturated stream — the
// fixed-point bookkeeping may never change a decision.
func TestSaturateFidelityHashesMatch(t *testing.T) {
	points, err := RunSaturateParallel(smallSaturateConfig(), runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	broker, vsa := points[0], points[1]
	if broker.Mode != "broker" || vsa.Mode != "vsa" {
		t.Fatalf("unexpected point order: %q, %q", broker.Mode, vsa.Mode)
	}
	if broker.DecisionHash != vsa.DecisionHash {
		t.Fatalf("decision sequences diverged: broker %016x (%d/%d) vs vsa %016x (%d/%d)",
			broker.DecisionHash, broker.Admitted, broker.Rejected,
			vsa.DecisionHash, vsa.Admitted, vsa.Rejected)
	}
	if broker.Admitted != vsa.Admitted || broker.Rejected != vsa.Rejected {
		t.Fatalf("counts diverged: broker %d/%d vs vsa %d/%d",
			broker.Admitted, broker.Rejected, vsa.Admitted, vsa.Rejected)
	}
	// A stream that never rejects (or never admits) pins nothing.
	if broker.Admitted == 0 || broker.Rejected == 0 {
		t.Fatalf("workload produced admitted=%d rejected=%d, want both nonzero", broker.Admitted, broker.Rejected)
	}
}

// TestSaturateCSVDeterministic pins the worker-count independence the CSV
// determinism smoke in CI relies on.
func TestSaturateCSVDeterministic(t *testing.T) {
	cfg := smallSaturateConfig()
	render := func(workers int) []byte {
		points, err := RunSaturateParallel(cfg, runner.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteTable(&buf, SaturateTable(points)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if one, eight := render(1), render(8); !bytes.Equal(one, eight) {
		t.Fatalf("saturate CSV differs between 1 and 8 workers:\n%s\nvs\n%s", one, eight)
	}
}

// TestSaturateThroughputSmoke runs both wall-clock modes small and checks
// the bookkeeping, not the speed: all sessions decided, quantiles sane.
func TestSaturateThroughputSmoke(t *testing.T) {
	cfg := smallSaturateConfig()
	ts, err := RunSaturateThroughputPair(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range ts {
		if tp.Admitted+tp.Rejected != cfg.Sessions {
			t.Fatalf("%s: %d decisions for %d sessions", tp.Mode, tp.Admitted+tp.Rejected, cfg.Sessions)
		}
		if tp.Admitted == 0 || tp.Rejected == 0 {
			t.Fatalf("%s: admitted=%d rejected=%d, want both nonzero", tp.Mode, tp.Admitted, tp.Rejected)
		}
		if tp.AdmissionsPerSec <= 0 || tp.P99us < tp.P50us {
			t.Fatalf("%s: nonsense stats %+v", tp.Mode, tp)
		}
	}
}
