package experiments

import (
	"fmt"
	"runtime"
	"testing"

	"quasaq/internal/runner"
	"quasaq/internal/simtime"
)

// Serial vs parallel sweep wall-clock: the same (system × replica) grid run
// with one worker and with GOMAXPROCS workers. `make bench-runner` archives
// the numbers as BENCH_runner.json; on an N-core machine the parallel run
// should approach N× until the grid runs out of cells.

func benchSweep(b *testing.B, workers int) {
	cfg := ThroughputConfig{Seed: 11, Horizon: simtime.Seconds(200), Bucket: simtime.Seconds(20)}
	sc := NewFig6Scenario(cfg)
	b.ReportMetric(float64(workers), "workers")
	for i := 0; i < b.N; i++ {
		series, err := RunSweep(sc, runner.Options{Workers: workers, Replicas: 4})
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 3 {
			b.Fatalf("series = %d", len(series))
		}
	}
}

func BenchmarkRunnerSweepSerial(b *testing.B) { benchSweep(b, 1) }

func BenchmarkRunnerSweepParallel(b *testing.B) { benchSweep(b, runtime.GOMAXPROCS(0)) }

// Cell-grain reference: one hermetic throughput world, the unit the pool
// schedules. sweep time / (cells × cell time) shows pool overhead.
func BenchmarkRunnerCell(b *testing.B) {
	cfg := ThroughputConfig{Seed: 11, Horizon: simtime.Seconds(200), Bucket: simtime.Seconds(20)}
	for i := 0; i < b.N; i++ {
		if _, err := RunThroughput(SysQuaSAQ, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Example documents the parallel entry point.
func ExampleRunSweep() {
	cfg := ThroughputConfig{Seed: 11, Horizon: simtime.Seconds(60), Bucket: simtime.Seconds(20)}
	series, err := RunSweep(NewFig7Scenario(cfg), runner.Options{Workers: 2, Replicas: 2})
	if err != nil {
		panic(err)
	}
	for _, s := range series {
		fmt.Printf("%s replicas=%d\n", s.DisplayName(), s.Reps())
	}
	// Output:
	// QuaSAQ (Random) replicas=2
	// VDBMS+QuaSAQ replicas=2
}
