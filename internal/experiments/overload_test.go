package experiments

import (
	"bytes"
	"testing"

	"quasaq/internal/faults"
	"quasaq/internal/runner"
	"quasaq/internal/simtime"
	"quasaq/internal/workload"
)

// detOverloadCfg shrinks the ramp so the determinism matrix stays fast while
// still crossing capacity and firing every protection.
func detOverloadCfg() OverloadConfig {
	cfg := DefaultOverloadConfig()
	cfg.Phases = []workload.Phase{
		{Rate: 1, Duration: simtime.Seconds(20)},
		{Rate: 10, Duration: simtime.Seconds(40)},
		{Rate: 1, Duration: simtime.Seconds(20)},
	}
	cfg.Schedule = faults.Schedule{
		{At: simtime.Seconds(22), Kind: faults.LinkCongest, Target: "srv-a", Factor: 0.45},
		{At: simtime.Seconds(30), Kind: faults.LinkPartition, Target: "srv-c"},
		{At: simtime.Seconds(45), Kind: faults.LinkRestore, Target: "srv-c"},
		{At: simtime.Seconds(60), Kind: faults.LinkRestore, Target: "srv-a"},
	}
	return cfg
}

func TestOverloadCSVDeterministic(t *testing.T) {
	assertDeterministic(t, "overload", func(t *testing.T, workers int) []byte {
		points, err := RunOverloadParallel(detOverloadCfg(), runner.Options{Workers: workers, Replicas: 2})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteOverloadCSV(&buf, points); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	})
}

// The headline robustness claims: the ladder rescues a meaningful share of
// violating sessions short of abandonment, and the breaker+queue pair cuts
// the admission tail when a site goes dark under load.
func TestOverloadAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("full overload ramp in -short mode")
	}
	cfg := DefaultOverloadConfig()
	points, err := RunOverloadParallel(cfg, runner.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	base := overloadVariant(points, "baseline")
	guard := overloadVariant(points, "guarded")
	if base == nil || guard == nil {
		t.Fatalf("missing variant in %v", points)
	}
	if base.Guardian.Violations != 0 || base.BreakerOpens != 0 || base.Expired != 0 {
		t.Fatalf("baseline ran with protections on: %+v", base)
	}
	if guard.Guardian.ViolatedSessions == 0 {
		t.Fatal("guarded run saw no violations — the ramp no longer stresses QoS")
	}
	if rate := guard.SavedRate(); rate < 0.30 {
		t.Errorf("ladder saved %.0f%% of violated sessions, want >= 30%%", 100*rate)
	}
	if guard.Guardian.Saved() != guard.Guardian.SavedStepDown+guard.Guardian.SavedRenegotiate+guard.Guardian.SavedMigrate {
		t.Errorf("saved total inconsistent: %+v", guard.Guardian)
	}
	bp99, gp99 := base.Latency.Percentile(99), guard.Latency.Percentile(99)
	if gp99 >= bp99 {
		t.Errorf("guarded admission p99 %.1f ms not below baseline %.1f ms", gp99, bp99)
	}
	if guard.BreakerOpens == 0 || guard.BreakerOpenSeconds <= 0 {
		t.Errorf("breaker never opened during the partition: %+v", guard)
	}
	if guard.QoSAbandoned != int(guard.Guardian.Abandons) {
		t.Errorf("%d abandoned deliveries but %d guardian abandons — an abandonment lost its ErrQoSAbandoned cause",
			guard.QoSAbandoned, guard.Guardian.Abandons)
	}
}
