package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"quasaq/internal/core"
	"quasaq/internal/media"
	"quasaq/internal/replication"
	"quasaq/internal/runner"
	"quasaq/internal/simtime"
	"quasaq/internal/stats"
	"quasaq/internal/transport"
	"quasaq/internal/workload"
)

// SystemKind selects which delivery system a throughput run exercises.
type SystemKind int

// The three systems compared in Figure 6, plus QuaSAQ cost-model variants
// for Figure 7 and the ablations.
const (
	SysVDBMS SystemKind = iota
	SysQoSAPI
	SysQuaSAQ
	SysQuaSAQRandom
	SysQuaSAQMinSum
	SysQuaSAQStatic
)

// String names the system as the paper's legends do.
func (s SystemKind) String() string {
	switch s {
	case SysVDBMS:
		return "VDBMS"
	case SysQoSAPI:
		return "VDBMS+QoS API"
	case SysQuaSAQ:
		return "VDBMS+QuaSAQ"
	case SysQuaSAQRandom:
		return "QuaSAQ (Random)"
	case SysQuaSAQMinSum:
		return "QuaSAQ (Min-Sum)"
	case SysQuaSAQStatic:
		return "QuaSAQ (Static)"
	default:
		return fmt.Sprintf("SystemKind(%d)", int(s))
	}
}

// ThroughputConfig parameterizes a throughput run.
type ThroughputConfig struct {
	Seed    int64
	Horizon simtime.Time // total simulated time
	Bucket  simtime.Time // sampling bucket for the series
	// SingleCopy switches replication to the single-copy ablation.
	SingleCopy bool
}

// DefaultFig6Config is the paper's Figure 6 setup: 1000 seconds, queries
// every ~1 s.
func DefaultFig6Config() ThroughputConfig {
	return ThroughputConfig{Seed: 11, Horizon: simtime.Seconds(1000), Bucket: simtime.Seconds(20)}
}

// DefaultFig7Config is the paper's Figure 7 setup: 7000 seconds.
func DefaultFig7Config() ThroughputConfig {
	return ThroughputConfig{Seed: 13, Horizon: simtime.Seconds(7000), Bucket: simtime.Seconds(100)}
}

// Series is one system's throughput trajectory. After a replica merge the
// counters hold totals and the sampled series hold element-wise sums over
// Replicas runs; the accessors and exporters normalize back to per-replica
// means, so a single-replica series reads exactly as before.
type Series struct {
	System SystemKind
	Name   string // display override (ablation variants); System.String() when empty
	Bucket simtime.Time
	Times  []float64 // bucket end times, seconds

	Outstanding []float64 // sampled outstanding sessions (Fig 6a / 7a)
	SucceededPM []float64 // QoS-succeeding completions per minute (Fig 6b)
	CumRejects  []float64 // cumulative rejected queries (Fig 7b)

	Queries   int
	Admitted  int
	Rejected  int
	Completed int
	QoSOK     int

	// Replicas counts the replica runs folded into this series (0 or 1
	// means a single run).
	Replicas int
}

// DisplayName is the legend label: the variant name when set, else the
// system's paper name.
func (s *Series) DisplayName() string {
	if s.Name != "" {
		return s.Name
	}
	return s.System.String()
}

// Reps returns the number of replica runs folded into the series, at least 1.
func (s *Series) Reps() int {
	if s.Replicas < 1 {
		return 1
	}
	return s.Replicas
}

// Merge folds another replica's series into s: counters sum, sampled series
// add element-wise, and Replicas grows, so means recover by dividing by
// Reps(). Both series must come from the same config (equal bucketing and
// sample counts); the receiver keeps its Times axis.
func (s *Series) Merge(o *Series) {
	if len(o.Outstanding) != len(s.Outstanding) || o.Bucket != s.Bucket {
		panic(fmt.Sprintf("experiments: merging mismatched series (%d/%v vs %d/%v samples)",
			len(s.Outstanding), s.Bucket, len(o.Outstanding), o.Bucket))
	}
	for i := range s.Outstanding {
		s.Outstanding[i] += o.Outstanding[i]
	}
	for i := range s.SucceededPM {
		s.SucceededPM[i] += o.SucceededPM[i]
	}
	for i := range s.CumRejects {
		s.CumRejects[i] += o.CumRejects[i]
	}
	s.Queries += o.Queries
	s.Admitted += o.Admitted
	s.Rejected += o.Rejected
	s.Completed += o.Completed
	s.QoSOK += o.QoSOK
	s.Replicas = s.Reps() + o.Reps()
}

// SteadyOutstanding averages the outstanding-session samples over the last
// half of the run: the "stable stage" the paper compares (§5.2). For a
// merged series this is the cross-replica mean.
func (s *Series) SteadyOutstanding() float64 {
	n := len(s.Outstanding)
	if n == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.Outstanding[n/2:] {
		sum += v
	}
	return sum / float64(n-n/2) / float64(s.Reps())
}

// RunThroughput runs one system against the paper's workload.
func RunThroughput(sys SystemKind, cfg ThroughputConfig) (*Series, error) {
	sim := simtime.NewSimulator()
	cluster := core.TestbedCluster(sim)
	corpus := media.StandardCorpus(uint64(cfg.Seed))
	pol := replication.DefaultPolicy()
	if cfg.SingleCopy {
		pol = replication.SingleCopyPolicy()
	}
	if _, err := cluster.LoadCorpus(corpus, pol); err != nil {
		return nil, err
	}

	out := &Series{System: sys, Bucket: cfg.Bucket}
	succeeded := stats.NewTimeSeries(cfg.Bucket)
	rejects := stats.NewTimeSeries(cfg.Bucket)

	onSessionDone := func(sess *transport.Session) {
		out.Completed++
		if sess.QoSOK() {
			out.QoSOK++
			succeeded.Observe(sess.Finished(), 1)
		}
	}

	var serve func(site string, id media.VideoID, req workload.Request) error
	switch sys {
	case SysVDBMS:
		svc := core.NewVDBMSService(cluster)
		serve = func(site string, id media.VideoID, _ workload.Request) error {
			_, err := svc.Service(site, id, 0, onSessionDone)
			return err
		}
	case SysQoSAPI:
		svc := core.NewQoSAPIService(cluster)
		serve = func(site string, id media.VideoID, _ workload.Request) error {
			_, err := svc.Service(site, id, 0, onSessionDone)
			return err
		}
	default:
		var model core.CostModel
		switch sys {
		case SysQuaSAQRandom:
			model = core.NewRandom(simtime.NewRand(cfg.Seed + 1000))
		case SysQuaSAQMinSum:
			model = core.MinSum{}
		case SysQuaSAQStatic:
			model = core.StaticCheapest{}
		default:
			model = core.LRB{}
		}
		mgr := core.NewManager(cluster, model)
		serve = func(site string, id media.VideoID, req workload.Request) error {
			_, err := mgr.Service(site, id, req.Req, core.ServiceOptions{
				OnDone: func(d *core.Delivery) { onSessionDone(d.Session) },
			})
			return err
		}
	}

	gen := paperWorkload(cfg.Seed, cluster, corpus)
	gen.Drive(sim, cfg.Horizon, func(r workload.Request) {
		out.Queries++
		if err := serve(r.Site, r.Video, r); err != nil {
			out.Rejected++
			rejects.Observe(sim.Now(), 1)
		} else {
			out.Admitted++
		}
	})

	// Sample outstanding sessions once per bucket.
	samples := int(cfg.Horizon / cfg.Bucket)
	for i := 1; i <= samples; i++ {
		at := simtime.Time(i) * cfg.Bucket
		sim.ScheduleAt(at, func() {
			out.Times = append(out.Times, simtime.ToSeconds(sim.Now()))
			out.Outstanding = append(out.Outstanding, float64(cluster.OutstandingSessions()))
		})
	}
	sim.RunUntil(cfg.Horizon)

	perMinFactor := 60 / simtime.ToSeconds(cfg.Bucket)
	for i := 0; i < samples; i++ {
		out.SucceededPM = append(out.SucceededPM, succeeded.Sum(i)*perMinFactor)
	}
	cum := 0.0
	for i := 0; i < samples; i++ {
		cum += rejects.Sum(i)
		out.CumRejects = append(out.CumRejects, cum)
	}
	return out, nil
}

// RunFig6 reproduces Figure 6: the three systems under identical query
// streams. It is the serial-compatible wrapper over the fig6 scenario.
func RunFig6(cfg ThroughputConfig) ([]*Series, error) {
	return RunFig6Parallel(cfg, runner.Options{})
}

// RunFig7 reproduces Figure 7: QuaSAQ under the LRB model vs the
// randomized plan selector.
func RunFig7(cfg ThroughputConfig) ([]*Series, error) {
	return RunFig7Parallel(cfg, runner.Options{})
}

// fmtCount renders a replica-merged counter: the exact total for a single
// run, the cross-replica mean once replicas were folded in.
func fmtCount(n, reps int) string {
	if reps <= 1 {
		return strconv.Itoa(n)
	}
	return strconv.FormatFloat(float64(n)/float64(reps), 'f', 1, 64)
}

// FormatThroughput renders series the way the paper's figures are read:
// steady-state outstanding sessions, success rates, rejects. Counters of a
// replica-merged series render as cross-replica means.
func FormatThroughput(title string, series []*Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", title)
	if len(series) > 0 && series[0].Reps() > 1 {
		fmt.Fprintf(&b, "  (mean of %d replicas)", series[0].Reps())
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-20s %8s %9s %9s %10s %12s %12s\n",
		"System", "Queries", "Admitted", "Rejected", "Completed", "QoS-OK/min", "SteadyOut")
	for _, s := range series {
		reps := s.Reps()
		dur := simtime.ToSeconds(s.Bucket) * float64(len(s.SucceededPM))
		perMin := 0.0
		if dur > 0 {
			perMin = float64(s.QoSOK) / float64(reps) / dur * 60
		}
		fmt.Fprintf(&b, "%-20s %8s %9s %9s %10s %12.1f %12.1f\n",
			s.DisplayName(), fmtCount(s.Queries, reps), fmtCount(s.Admitted, reps),
			fmtCount(s.Rejected, reps), fmtCount(s.Completed, reps), perMin, s.SteadyOutstanding())
	}
	b.WriteString("\nOutstanding sessions over time:\n")
	for _, s := range series {
		tr := &stats.Trace{}
		for i, v := range s.Outstanding {
			tr.Add(simtime.Time(i), v/float64(s.Reps()))
		}
		fmt.Fprintf(&b, "\n%s\n%s", s.DisplayName(), tr.ASCIIPlot(80, 6, 0))
	}
	return b.String()
}
