package experiments

import (
	"testing"

	"quasaq/internal/simtime"
)

func TestDynamicReplicationConverges(t *testing.T) {
	cfg := ThroughputConfig{Seed: 17, Horizon: simtime.Seconds(400), Bucket: simtime.Seconds(20)}
	r, err := RunDynamicReplication(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.ReplicasCreated == 0 {
		t.Fatal("online replicator created nothing")
	}
	// Dynamic must clearly beat static single-copy (replicas arrive over
	// real link transfers, so the margin builds through the run) and stay
	// at or below the offline full ladder.
	if r.DynamicSingle.Admitted < r.StaticSingle.Admitted*3/2 {
		t.Fatalf("dynamic admitted %d, want >= 1.5x static %d",
			r.DynamicSingle.Admitted, r.StaticSingle.Admitted)
	}
	if r.DynamicSingle.SteadyOutstanding() <= r.StaticSingle.SteadyOutstanding() {
		t.Fatalf("dynamic outstanding %.1f <= static %.1f",
			r.DynamicSingle.SteadyOutstanding(), r.StaticSingle.SteadyOutstanding())
	}
	if r.DynamicSingle.Admitted > r.FullReplica.Admitted {
		t.Fatalf("dynamic admitted %d exceeds the offline full ladder %d",
			r.DynamicSingle.Admitted, r.FullReplica.Admitted)
	}
	out := FormatDynamic(r)
	if out == "" {
		t.Fatal("empty format")
	}
}
