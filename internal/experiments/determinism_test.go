package experiments

import (
	"bytes"
	"testing"

	"quasaq/internal/runner"
	"quasaq/internal/simtime"
)

// The Scenario/Runner contract: output bytes depend only on (config, seed,
// replicas) — never on the worker count or goroutine scheduling. Every
// experiment that exports CSV is pinned here for workers=1 vs workers=8 and
// for two repeated runs with the same seed.

func detThroughputCfg() ThroughputConfig {
	return ThroughputConfig{Seed: 11, Horizon: simtime.Seconds(120), Bucket: simtime.Seconds(20)}
}

// renderCSV runs an experiment under the given worker count and returns its
// CSV bytes.
type csvRun func(t *testing.T, workers int) []byte

func assertDeterministic(t *testing.T, name string, run csvRun) {
	t.Helper()
	serial := run(t, 1)
	parallel := run(t, 8)
	again := run(t, 8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("%s: workers=1 and workers=8 CSVs differ:\n%s\nvs\n%s", name, serial, parallel)
	}
	if !bytes.Equal(parallel, again) {
		t.Fatalf("%s: two identical runs differ", name)
	}
	if len(bytes.TrimSpace(serial)) == 0 {
		t.Fatalf("%s: empty CSV", name)
	}
}

func TestThroughputCSVDeterministic(t *testing.T) {
	assertDeterministic(t, "fig6", func(t *testing.T, workers int) []byte {
		series, err := RunFig6Parallel(detThroughputCfg(), runner.Options{Workers: workers, Replicas: 3})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteSeriesCSV(&buf, series); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	})
}

func TestAblationCSVDeterministic(t *testing.T) {
	assertDeterministic(t, "ablation", func(t *testing.T, workers int) []byte {
		series, err := RunSweep(NewAblationScenario(detThroughputCfg()), runner.Options{Workers: workers, Replicas: 2})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteSeriesCSV(&buf, series); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	})
}

func TestFig5CSVDeterministic(t *testing.T) {
	cfg := DefaultFig5Config()
	cfg.Frames = 120
	assertDeterministic(t, "fig5", func(t *testing.T, workers int) []byte {
		res, err := RunFig5Parallel(cfg, runner.Options{Workers: workers, Replicas: 2})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteFig5CSV(&buf, res); err != nil {
			t.Fatal(err)
		}
		// Fold the merged summaries in too: Table 2's moments must also be
		// scheduling-independent.
		buf.WriteString(FormatTable2(Table2(res)))
		return buf.Bytes()
	})
}

func TestChaosCSVDeterministic(t *testing.T) {
	cfg := DefaultChaosConfig()
	cfg.Horizon = simtime.Seconds(300)
	assertDeterministic(t, "chaos", func(t *testing.T, workers int) []byte {
		res, err := RunChaosParallel(cfg, runner.Options{Workers: workers, Replicas: 3})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteChaosCSV(&buf, res); err != nil {
			t.Fatal(err)
		}
		// The merged metrics registry must also export identically.
		if err := res.Metrics.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	})
}

func TestDynamicDeterministic(t *testing.T) {
	assertDeterministic(t, "dynamic", func(t *testing.T, workers int) []byte {
		res, err := RunDynamicReplicationParallel(detThroughputCfg(), runner.Options{Workers: workers, Replicas: 2})
		if err != nil {
			t.Fatal(err)
		}
		return []byte(FormatDynamic(res))
	})
}

// A single-replica sweep must reproduce the plain serial driver exactly:
// replica 0 runs the base seed itself.
func TestSingleReplicaMatchesSerialRun(t *testing.T) {
	cfg := detThroughputCfg()
	direct, err := RunThroughput(SysQuaSAQ, cfg)
	if err != nil {
		t.Fatal(err)
	}
	series, err := RunFig6Parallel(cfg, runner.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	swept := series[2] // quasaq point
	if swept.Queries != direct.Queries || swept.Admitted != direct.Admitted ||
		swept.Rejected != direct.Rejected || swept.QoSOK != direct.QoSOK {
		t.Fatalf("swept quasaq point %+v differs from direct run %+v", swept, direct)
	}
}

// Replica streams are independent: the merged counters over N replicas are
// the sum of the N individual runs, each under its derived seed.
func TestReplicaMergeMatchesIndividualRuns(t *testing.T) {
	cfg := detThroughputCfg()
	const reps = 3
	var wantQueries, wantQoSOK int
	for i := 0; i < reps; i++ {
		c := cfg
		c.Seed = simtime.ReplicaSeed(cfg.Seed, i)
		s, err := RunThroughput(SysQuaSAQ, c)
		if err != nil {
			t.Fatal(err)
		}
		wantQueries += s.Queries
		wantQoSOK += s.QoSOK
	}
	series, err := RunFig6Parallel(cfg, runner.Options{Workers: 4, Replicas: reps})
	if err != nil {
		t.Fatal(err)
	}
	got := series[2]
	if got.Reps() != reps {
		t.Fatalf("Reps = %d, want %d", got.Reps(), reps)
	}
	if got.Queries != wantQueries || got.QoSOK != wantQoSOK {
		t.Fatalf("merged counters %d/%d, want %d/%d", got.Queries, got.QoSOK, wantQueries, wantQoSOK)
	}
}

func TestAdmissionCSVDeterministic(t *testing.T) {
	cfg := DefaultAdmissionConfig()
	cfg.Horizon = simtime.Seconds(40)
	cfg.Loads = []float64{1, 4}
	assertDeterministic(t, "admission", func(t *testing.T, workers int) []byte {
		points, err := RunAdmissionParallel(cfg, runner.Options{Workers: workers, Replicas: 3})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteAdmissionCSV(&buf, points); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	})
}
