package experiments

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"quasaq/internal/simtime"
)

func TestWriteSeriesCSV(t *testing.T) {
	s, err := RunThroughput(SysQuaSAQ, ThroughputConfig{
		Seed: 5, Horizon: simtime.Seconds(60), Bucket: simtime.Seconds(20),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, []*Series{s}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(s.Outstanding) {
		t.Fatalf("csv rows = %d, want header + %d", len(lines), len(s.Outstanding))
	}
	if !strings.HasPrefix(lines[0], "time_s,system,outstanding") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "VDBMS+QuaSAQ") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestWriteFig5CSVAndSave(t *testing.T) {
	cfg := DefaultFig5Config()
	cfg.Frames = 50
	res, err := RunFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path, err := SaveCSV(dir, "fig5.csv", func(w io.Writer) error {
		return WriteFig5CSV(w, res)
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 1+4*50 {
		t.Fatalf("rows = %d, want %d", len(lines), 1+4*50)
	}
	if filepath.Base(path) != "fig5.csv" {
		t.Fatalf("path = %s", path)
	}
}
