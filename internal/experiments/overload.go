package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"quasaq/internal/broker"
	"quasaq/internal/core"
	"quasaq/internal/faults"
	"quasaq/internal/guardian"
	"quasaq/internal/media"
	"quasaq/internal/replication"
	"quasaq/internal/runner"
	"quasaq/internal/simtime"
	"quasaq/internal/stats"
	"quasaq/internal/workload"
)

// The overload experiment ramps the arrival rate well past testbed capacity
// while cross traffic congests two delivery links and a third site briefly
// partitions, then lets the load recede. It runs twice in hermetic worlds:
// a "baseline" with every protection off, and a "guarded" variant with the
// runtime QoS guardian, per-site circuit breakers, the global retry budget,
// and the deadline-aware admission queue all on. The comparison answers the
// two robustness questions: how many would-be QoS casualties the
// degradation ladder rescues short of abandonment, and how much admission
// tail latency the breaker shaves when a site goes dark.

// OverloadConfig parameterizes one baseline/guarded pair.
type OverloadConfig struct {
	Seed     int64
	BaseLoad float64          // queries per second at phase rate 1
	Phases   []workload.Phase // piecewise ramp; the horizon is their sum
	Schedule faults.Schedule  // congestion + partition plan
	Ctrl     broker.Config    // shared control-plane parameters

	// Protections, applied only to the guarded variant.
	Breaker     broker.BreakerConfig
	RetryBudget broker.RetryBudgetConfig
	Queue       core.AdmissionQueueConfig
	Guardian    guardian.Config
}

// DefaultOverloadConfig ramps 1→6→15→6→1 qps over 280 s; srv-a and srv-b
// lose half their effective link capacity to cross traffic through the
// peak, and srv-c partitions for 30 s right as the ramp crests.
func DefaultOverloadConfig() OverloadConfig {
	return OverloadConfig{
		Seed:     23,
		BaseLoad: 1,
		Phases: []workload.Phase{
			{Rate: 1, Duration: simtime.Seconds(40)},
			{Rate: 6, Duration: simtime.Seconds(60)},
			{Rate: 15, Duration: simtime.Seconds(80)},
			{Rate: 6, Duration: simtime.Seconds(60)},
			{Rate: 1, Duration: simtime.Seconds(40)},
		},
		Schedule: faults.Schedule{
			{At: simtime.Seconds(60), Kind: faults.LinkCongest, Target: "srv-a", Factor: 0.45},
			{At: simtime.Seconds(90), Kind: faults.LinkCongest, Target: "srv-b", Factor: 0.65},
			{At: simtime.Seconds(100), Kind: faults.LinkPartition, Target: "srv-c"},
			{At: simtime.Seconds(130), Kind: faults.LinkRestore, Target: "srv-c"},
			{At: simtime.Seconds(200), Kind: faults.LinkRestore, Target: "srv-a"},
			{At: simtime.Seconds(210), Kind: faults.LinkRestore, Target: "srv-b"},
		},
		Ctrl:        broker.TestbedConfig(),
		Breaker:     broker.BreakerConfig{Threshold: 3},
		RetryBudget: broker.RetryBudgetConfig{Burst: 10},
		Queue: core.AdmissionQueueConfig{
			MaxInFlight: 12,
			MaxQueue:    64,
			Deadline:    simtime.Seconds(2),
		},
		Guardian: guardian.Config{}, // defaults
	}
}

// Horizon is the arrival window: the sum of the phase durations.
func (c OverloadConfig) Horizon() simtime.Time {
	var h simtime.Time
	for _, p := range c.Phases {
		h += p.Duration
	}
	return h
}

// OverloadPoint is one variant's outcome.
type OverloadPoint struct {
	Variant string

	Queries      int
	Admitted     int
	Rejected     int
	Expired      int // rejections carrying ErrAdmissionDeadline
	CtrlTimeouts int // rejections carrying ErrControlTimeout
	Completed    int
	QoSOK        int
	Failed       int // admitted but lost (faults or guardian abandonment)
	QoSAbandoned int // failures carrying ErrQoSAbandoned

	Latency *stats.Sample // admission decision latency, ms from arrival

	Guardian           guardian.Stats
	BreakerOpens       uint64
	BreakerFastFails   uint64
	RetriesSuppressed  uint64
	BreakerOpenSeconds float64

	// Replicas counts merged replica runs (0 or 1 means a single run).
	Replicas int
}

func (p *OverloadPoint) reps() int {
	if p.Replicas < 1 {
		return 1
	}
	return p.Replicas
}

// Merge folds another replica's point in: counters sum, latency samples
// pool, guardian counters add.
func (p *OverloadPoint) Merge(o *OverloadPoint) {
	p.Queries += o.Queries
	p.Admitted += o.Admitted
	p.Rejected += o.Rejected
	p.Expired += o.Expired
	p.CtrlTimeouts += o.CtrlTimeouts
	p.Completed += o.Completed
	p.QoSOK += o.QoSOK
	p.Failed += o.Failed
	p.QoSAbandoned += o.QoSAbandoned
	for _, x := range o.Latency.Values() {
		p.Latency.Add(x)
	}
	p.Guardian = addGuardianStats(p.Guardian, o.Guardian)
	p.BreakerOpens += o.BreakerOpens
	p.BreakerFastFails += o.BreakerFastFails
	p.RetriesSuppressed += o.RetriesSuppressed
	p.BreakerOpenSeconds += o.BreakerOpenSeconds
	p.Replicas = p.reps() + o.reps()
}

// addGuardianStats sums two guardian counter snapshots field by field.
func addGuardianStats(a, b guardian.Stats) guardian.Stats {
	a.Watched += b.Watched
	a.Windows += b.Windows
	a.Breaches += b.Breaches
	a.Violations += b.Violations
	a.ViolatedSessions += b.ViolatedSessions
	a.StepDowns += b.StepDowns
	a.Renegotiates += b.Renegotiates
	a.Migrations += b.Migrations
	a.Abandons += b.Abandons
	a.ReplanFailures += b.ReplanFailures
	a.SavedStepDown += b.SavedStepDown
	a.SavedRenegotiate += b.SavedRenegotiate
	a.SavedMigrate += b.SavedMigrate
	a.LossViolations += b.LossViolations
	a.DelayViolations += b.DelayViolations
	a.JitterViolations += b.JitterViolations
	a.ThroughputViolations += b.ThroughputViolations
	a.QoERecords += b.QoERecords
	return a
}

// SavedRate is violated sessions rescued by rungs 1–3 over all violated
// sessions (0 when nothing violated).
func (p *OverloadPoint) SavedRate() float64 {
	if p.Guardian.ViolatedSessions == 0 {
		return 0
	}
	return float64(p.Guardian.Saved()) / float64(p.Guardian.ViolatedSessions)
}

// AbandonRate is guardian-shed sessions over admitted sessions.
func (p *OverloadPoint) AbandonRate() float64 {
	if p.Admitted == 0 {
		return 0
	}
	return float64(p.QoSAbandoned) / float64(p.Admitted)
}

// RunOverloadPoint runs one variant ("baseline" or "guarded") in a hermetic
// world and drains it completely: every admission settles and every stream
// finishes before counters are read.
func RunOverloadPoint(cfg OverloadConfig, variant string, seed int64) (*OverloadPoint, error) {
	guarded := variant == "guarded"
	if !guarded && variant != "baseline" {
		return nil, fmt.Errorf("experiments: unknown overload variant %q", variant)
	}
	if cfg.BaseLoad <= 0 {
		return nil, fmt.Errorf("experiments: non-positive base load %v", cfg.BaseLoad)
	}
	if len(cfg.Phases) == 0 {
		return nil, fmt.Errorf("experiments: overload needs a phase ramp")
	}
	if err := cfg.Schedule.Validate(); err != nil {
		return nil, err
	}

	sim := simtime.NewSimulator()
	cluster := core.TestbedCluster(sim)
	corpus := media.StandardCorpus(uint64(seed))
	if _, err := cluster.LoadCorpus(corpus, replication.DefaultPolicy()); err != nil {
		return nil, err
	}
	ctrl := cfg.Ctrl
	ctrl.Seed = seed
	if guarded {
		ctrl.Breaker = cfg.Breaker
		ctrl.RetryBudget = cfg.RetryBudget
	}
	if err := cluster.ConfigureControl(ctrl); err != nil {
		return nil, err
	}

	mgr := core.NewManager(cluster, core.LRB{})
	pol := core.DefaultFailoverPolicy()
	pol.BestEffortFallback = true
	mgr.EnableFailover(pol)

	var guard *guardian.Guardian
	if guarded {
		if err := mgr.ConfigureAdmissionQueue(cfg.Queue); err != nil {
			return nil, err
		}
		g, err := guardian.New(mgr, cfg.Guardian)
		if err != nil {
			return nil, err
		}
		guard = g
	}

	in := faults.NewInjector(sim)
	for _, site := range cluster.Sites() {
		in.RegisterNode(cluster.Nodes[site])
	}
	if err := in.Apply(cfg.Schedule); err != nil {
		return nil, err
	}

	out := &OverloadPoint{Variant: variant, Latency: &stats.Sample{}}
	gen := workload.New(workload.Config{
		Seed:             seed,
		Videos:           corpus,
		Sites:            cluster.Sites(),
		MeanInterArrival: simtime.Seconds(1 / cfg.BaseLoad),
		Phases:           cfg.Phases,
	})
	gen.Drive(sim, cfg.Horizon(), func(r workload.Request) {
		out.Queries++
		arrived := sim.Now()
		mgr.ServiceAsync(r.Site, r.Video, r.Req, core.ServiceOptions{
			OnDone: func(d *core.Delivery) {
				out.Completed++
				if d.Session.QoSOK() {
					out.QoSOK++
				}
			},
			OnFailed: func(_ *core.Delivery, err error) {
				out.Failed++
				if errors.Is(err, guardian.ErrQoSAbandoned) {
					out.QoSAbandoned++
				}
			},
		}, func(_ *core.Delivery, err error) {
			out.Latency.Add(1000 * simtime.ToSeconds(sim.Now()-arrived))
			if err != nil {
				out.Rejected++
				if errors.Is(err, core.ErrAdmissionDeadline) {
					out.Expired++
				}
				if errors.Is(err, core.ErrControlTimeout) {
					out.CtrlTimeouts++
				}
				return
			}
			out.Admitted++
		})
	})
	// Drain completely: arrivals, faults, recoveries, guardian windows, and
	// streams are all finite, so the event queue empties.
	sim.Run()

	if got := out.Admitted + out.Rejected; got != out.Queries {
		return nil, fmt.Errorf("experiments: %d of %d overload admissions never settled", out.Queries-got, out.Queries)
	}
	if got := out.Completed + out.Failed; got != out.Admitted {
		return nil, fmt.Errorf("experiments: %d of %d overload sessions never concluded", out.Admitted-got, out.Admitted)
	}
	if guard != nil {
		out.Guardian = guard.Stats()
	}
	reg := mgr.Registry()
	out.BreakerOpens = reg.Counter("quasaq_ctrl_breaker_opens_total").Value()
	out.BreakerFastFails = reg.Counter("quasaq_ctrl_breaker_fastfails_total").Value()
	out.RetriesSuppressed = reg.Counter("quasaq_ctrl_retries_suppressed_total").Value()
	out.BreakerOpenSeconds = simtime.ToSeconds(cluster.Ctrl.BreakerOpenTime())
	return out, nil
}

// OverloadScenario runs the baseline and guarded variants as two points.
type OverloadScenario struct {
	Cfg OverloadConfig
}

// Name implements runner.Scenario.
func (s *OverloadScenario) Name() string { return "overload" }

// Points implements runner.Scenario.
func (s *OverloadScenario) Points() []runner.Point {
	return []runner.Point{
		{Key: "baseline", Label: "no protections"},
		{Key: "guarded", Label: "guardian + breaker + queue"},
	}
}

// Run implements runner.Scenario.
func (s *OverloadScenario) Run(p runner.Point, seed int64) (*OverloadPoint, error) {
	return RunOverloadPoint(s.Cfg, p.Key, seed)
}

// RunOverload runs the pair serially.
func RunOverload(cfg OverloadConfig) ([]*OverloadPoint, error) {
	return RunOverloadParallel(cfg, runner.Options{})
}

// RunOverloadParallel is RunOverload with worker-pool and replica control.
func RunOverloadParallel(cfg OverloadConfig, opts runner.Options) ([]*OverloadPoint, error) {
	opts.Seed = cfg.Seed
	prs, err := runner.Sweep[*OverloadPoint](&OverloadScenario{Cfg: cfg}, opts)
	if err != nil {
		return nil, err
	}
	out := make([]*OverloadPoint, len(prs))
	for i, pr := range prs {
		out[i] = pr.Result
	}
	return out, nil
}

// OverloadTable renders the pair as tidy CSV: one row per variant.
// Counter columns of replica-merged points emit cross-replica means; the
// latency quantiles read the pooled cross-replica sample.
func OverloadTable(points []*OverloadPoint) Table {
	t := Table{Header: []string{
		"variant", "queries", "admitted", "rejected", "expired", "ctrl_timeouts",
		"completed", "qos_ok", "failed", "qos_abandoned",
		"violations", "violated_sessions", "stepdowns", "renegotiates", "migrations", "abandons", "saved",
		"breaker_opens", "breaker_fastfails", "retries_suppressed", "breaker_open_s",
		"adm_mean_ms", "adm_p50_ms", "adm_p95_ms", "adm_p99_ms", "adm_max_ms",
	}}
	for _, p := range points {
		reps := p.reps()
		sum := p.Latency.Summary()
		g := p.Guardian
		t.Rows = append(t.Rows, []string{
			p.Variant,
			fmtCount(p.Queries, reps),
			fmtCount(p.Admitted, reps),
			fmtCount(p.Rejected, reps),
			fmtCount(p.Expired, reps),
			fmtCount(p.CtrlTimeouts, reps),
			fmtCount(p.Completed, reps),
			fmtCount(p.QoSOK, reps),
			fmtCount(p.Failed, reps),
			fmtCount(p.QoSAbandoned, reps),
			fmtCount(int(g.Violations), reps),
			fmtCount(int(g.ViolatedSessions), reps),
			fmtCount(int(g.StepDowns), reps),
			fmtCount(int(g.Renegotiates), reps),
			fmtCount(int(g.Migrations), reps),
			fmtCount(int(g.Abandons), reps),
			fmtCount(int(g.Saved()), reps),
			fmtCount(int(p.BreakerOpens), reps),
			fmtCount(int(p.BreakerFastFails), reps),
			fmtCount(int(p.RetriesSuppressed), reps),
			fmt.Sprintf("%.3f", p.BreakerOpenSeconds/float64(reps)),
			fmt.Sprintf("%.3f", sum.Mean()),
			fmt.Sprintf("%.3f", p.Latency.Percentile(50)),
			fmt.Sprintf("%.3f", p.Latency.Percentile(95)),
			fmt.Sprintf("%.3f", p.Latency.Percentile(99)),
			fmt.Sprintf("%.3f", sum.Max()),
		})
	}
	return t
}

// WriteOverloadCSV writes the pair as tidy CSV.
func WriteOverloadCSV(w io.Writer, points []*OverloadPoint) error {
	return WriteTable(w, OverloadTable(points))
}

// overloadBench is the archived benchmark record (BENCH_overload.json).
type overloadBench struct {
	Experiment string               `json:"experiment"`
	Seed       int64                `json:"seed"`
	Replicas   int                  `json:"replicas"`
	HorizonS   float64              `json:"horizon_s"`
	Variants   []overloadBenchPoint `json:"variants"`
	// Headline comparisons.
	SavedRate          float64 `json:"guardian_saved_rate"`
	AbandonRate        float64 `json:"guardian_abandon_rate"`
	BaselineP99Ms      float64 `json:"baseline_admission_p99_ms"`
	GuardedP99Ms       float64 `json:"guarded_admission_p99_ms"`
	P99ImprovementFrac float64 `json:"admission_p99_improvement_frac"`
}

type overloadBenchPoint struct {
	Variant           string         `json:"variant"`
	Queries           int            `json:"queries"`
	Admitted          int            `json:"admitted"`
	Rejected          int            `json:"rejected"`
	Expired           int            `json:"expired"`
	CtrlTimeouts      int            `json:"ctrl_timeouts"`
	Completed         int            `json:"completed"`
	QoSOK             int            `json:"qos_ok"`
	Failed            int            `json:"failed"`
	QoSAbandoned      int            `json:"qos_abandoned"`
	Guardian          guardian.Stats `json:"guardian"`
	BreakerOpens      uint64         `json:"breaker_opens"`
	BreakerFastFails  uint64         `json:"breaker_fastfails"`
	RetriesSuppressed uint64         `json:"retries_suppressed"`
	BreakerOpenS      float64        `json:"breaker_open_s"`
	AdmMeanMs         float64        `json:"adm_mean_ms"`
	AdmP50Ms          float64        `json:"adm_p50_ms"`
	AdmP95Ms          float64        `json:"adm_p95_ms"`
	AdmP99Ms          float64        `json:"adm_p99_ms"`
	AdmMaxMs          float64        `json:"adm_max_ms"`
}

// overloadVariant finds a named variant in the pair (nil if absent).
func overloadVariant(points []*OverloadPoint, name string) *OverloadPoint {
	for _, p := range points {
		if p.Variant == name {
			return p
		}
	}
	return nil
}

// WriteOverloadJSON archives the run as an indented JSON benchmark record.
func WriteOverloadJSON(w io.Writer, cfg OverloadConfig, points []*OverloadPoint) error {
	b := overloadBench{
		Experiment: "overload",
		Seed:       cfg.Seed,
		HorizonS:   simtime.ToSeconds(cfg.Horizon()),
	}
	for _, p := range points {
		sum := p.Latency.Summary()
		b.Replicas = p.reps()
		b.Variants = append(b.Variants, overloadBenchPoint{
			Variant:           p.Variant,
			Queries:           p.Queries,
			Admitted:          p.Admitted,
			Rejected:          p.Rejected,
			Expired:           p.Expired,
			CtrlTimeouts:      p.CtrlTimeouts,
			Completed:         p.Completed,
			QoSOK:             p.QoSOK,
			Failed:            p.Failed,
			QoSAbandoned:      p.QoSAbandoned,
			Guardian:          p.Guardian,
			BreakerOpens:      p.BreakerOpens,
			BreakerFastFails:  p.BreakerFastFails,
			RetriesSuppressed: p.RetriesSuppressed,
			BreakerOpenS:      p.BreakerOpenSeconds,
			AdmMeanMs:         sum.Mean(),
			AdmP50Ms:          p.Latency.Percentile(50),
			AdmP95Ms:          p.Latency.Percentile(95),
			AdmP99Ms:          p.Latency.Percentile(99),
			AdmMaxMs:          sum.Max(),
		})
	}
	if base, guard := overloadVariant(points, "baseline"), overloadVariant(points, "guarded"); base != nil && guard != nil {
		b.SavedRate = guard.SavedRate()
		b.AbandonRate = guard.AbandonRate()
		b.BaselineP99Ms = base.Latency.Percentile(99)
		b.GuardedP99Ms = guard.Latency.Percentile(99)
		if b.BaselineP99Ms > 0 {
			b.P99ImprovementFrac = 1 - b.GuardedP99Ms/b.BaselineP99Ms
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// FormatOverload renders the pair the way an operator compares them: what
// the ramp cost without protections, and what each protection bought.
func FormatOverload(cfg OverloadConfig, points []*OverloadPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Overload: %.0f s ramp", simtime.ToSeconds(cfg.Horizon()))
	for i, p := range cfg.Phases {
		if i == 0 {
			b.WriteString(" (")
		} else {
			b.WriteString("→")
		}
		fmt.Fprintf(&b, "%g", p.Rate*cfg.BaseLoad)
	}
	b.WriteString(" qps), congestion on srv-a/srv-b, srv-c partition at the crest")
	if len(points) > 0 && points[0].reps() > 1 {
		fmt.Fprintf(&b, "  (mean of %d replicas)", points[0].reps())
	}
	b.WriteString("\n\n")
	fmt.Fprintf(&b, "%-9s %8s %9s %9s %8s %8s %10s %7s %7s %10s %10s %10s\n",
		"variant", "queries", "admitted", "rejected", "expired", "failed", "abandoned",
		"qos-ok", "opens", "p50(ms)", "p99(ms)", "max(ms)")
	for _, p := range points {
		reps := p.reps()
		fmt.Fprintf(&b, "%-9s %8s %9s %9s %8s %8s %10s %7s %7s %10.3f %10.3f %10.3f\n",
			p.Variant, fmtCount(p.Queries, reps), fmtCount(p.Admitted, reps),
			fmtCount(p.Rejected, reps), fmtCount(p.Expired, reps), fmtCount(p.Failed, reps),
			fmtCount(p.QoSAbandoned, reps), fmtCount(p.QoSOK, reps), fmtCount(int(p.BreakerOpens), reps),
			p.Latency.Percentile(50), p.Latency.Percentile(99), p.Latency.Summary().Max())
	}
	if guard := overloadVariant(points, "guarded"); guard != nil {
		g := guard.Guardian
		reps := guard.reps()
		fmt.Fprintf(&b, "\nGuardian: %s violated sessions, rungs fired stepdown %s  renegotiate %s  migrate %s  abandon %s\n",
			fmtCount(int(g.ViolatedSessions), reps), fmtCount(int(g.StepDowns), reps),
			fmtCount(int(g.Renegotiates), reps), fmtCount(int(g.Migrations), reps), fmtCount(int(g.Abandons), reps))
		fmt.Fprintf(&b, "Saved short of abandonment: %s of %s violated (%.0f%%)  abandon rate %.1f%% of admitted\n",
			fmtCount(int(g.Saved()), reps), fmtCount(int(g.ViolatedSessions), reps),
			100*guard.SavedRate(), 100*guard.AbandonRate())
		fmt.Fprintf(&b, "Breaker: open %.2f s total, %s fast-fails, %s retries suppressed\n",
			guard.BreakerOpenSeconds/float64(reps), fmtCount(int(guard.BreakerFastFails), reps),
			fmtCount(int(guard.RetriesSuppressed), reps))
	}
	if base, guard := overloadVariant(points, "baseline"), overloadVariant(points, "guarded"); base != nil && guard != nil {
		fmt.Fprintf(&b, "Admission p99: baseline %.1f ms → guarded %.1f ms\n",
			base.Latency.Percentile(99), guard.Latency.Percentile(99))
	}
	return b.String()
}
