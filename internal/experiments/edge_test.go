package experiments

import (
	"bytes"
	"testing"

	"quasaq/internal/runner"
	"quasaq/internal/simtime"
	"quasaq/internal/workload"
)

// detEdgeCfg shrinks the default curve to a short burst so the determinism
// pin and the semantics checks stay cheap.
func detEdgeCfg() EdgeExpConfig {
	cfg := DefaultEdgeExpConfig()
	cfg.Phases = []workload.Phase{
		{Rate: 1, Duration: simtime.Seconds(15)},
		{Rate: 5, Duration: simtime.Seconds(30)},
		{Rate: 1, Duration: simtime.Seconds(15)},
	}
	return cfg
}

func TestEdgeCSVDeterministic(t *testing.T) {
	assertDeterministic(t, "edge", func(t *testing.T, workers int) []byte {
		points, err := RunEdgeParallel(detEdgeCfg(), runner.Options{Workers: workers, Replicas: 2})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteEdgeCSV(&buf, points); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	})
}

func TestEdgeModeSemantics(t *testing.T) {
	points, err := RunEdge(detEdgeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	off, on := points[0], points[1]
	if off.Mode != EdgeModeOff || on.Mode != EdgeModeOn {
		t.Fatalf("mode order = %s,%s", off.Mode, on.Mode)
	}
	// Same seed, same arrival process: both modes face the same queries.
	if off.Queries != on.Queries {
		t.Fatalf("arrival processes diverged: %d vs %d queries", off.Queries, on.Queries)
	}
	// The edgeless control must be genuinely edge-free.
	if off.SplitAdmissions != 0 || off.Handovers != 0 {
		t.Fatalf("edgeless mode admitted split plans: %+v", off)
	}
	if off.EdgeBytes != 0 || off.OffloadFraction() != 0 {
		t.Fatalf("edgeless mode attributed bytes to an edge: %+v", off)
	}
	if off.Edge.Installs != 0 || off.Edge.Hits != 0 {
		t.Fatalf("edgeless mode has cache activity: %+v", off.Edge)
	}
	// The edge mode must exercise the whole tier under this skew.
	if on.Edge.Installs == 0 || on.Edge.Hits == 0 {
		t.Fatalf("edge mode never warmed the cache: %+v", on.Edge)
	}
	if on.SplitAdmissions == 0 {
		t.Fatal("edge mode never won a split admission")
	}
	if on.Handovers > on.SplitAdmissions {
		t.Fatalf("more handovers (%d) than split admissions (%d)",
			on.Handovers, on.SplitAdmissions)
	}
	if on.EdgeBytes == 0 || on.OffloadFraction() <= 0 {
		t.Fatalf("edge mode served no bytes from the edge: %+v", on)
	}
	for _, p := range points {
		if p.Queries == 0 || p.Admitted == 0 {
			t.Fatalf("%s: degenerate run %+v", p.Mode, p)
		}
		if p.Admitted+p.Rejected != p.Queries {
			t.Fatalf("%s: admitted %d + rejected %d != queries %d",
				p.Mode, p.Admitted, p.Rejected, p.Queries)
		}
		// The run drains to idle: every admitted delivery concluded.
		if p.Completed+p.Failed != p.Admitted {
			t.Fatalf("%s: completed %d + failed %d != admitted %d",
				p.Mode, p.Completed, p.Failed, p.Admitted)
		}
		if got := p.Startup.N(); got != p.Admitted {
			t.Fatalf("%s: %d startup samples for %d admissions", p.Mode, got, p.Admitted)
		}
	}
}

func TestEdgeBadConfig(t *testing.T) {
	if _, err := RunEdgePoint(detEdgeCfg(), "fog", 1); err == nil {
		t.Fatal("unknown mode accepted")
	}
	cfg := detEdgeCfg()
	cfg.BaseLoad = 0
	if _, err := RunEdgePoint(cfg, EdgeModeOn, 1); err == nil {
		t.Fatal("non-positive base load accepted")
	}
	cfg = detEdgeCfg()
	cfg.Phases = nil
	if _, err := RunEdgePoint(cfg, EdgeModeOn, 1); err == nil {
		t.Fatal("empty phase schedule accepted")
	}
}
