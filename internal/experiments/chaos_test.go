package experiments

import (
	"bytes"
	"strings"
	"testing"

	"quasaq/internal/faults"
	"quasaq/internal/simtime"
)

func shortChaosConfig() ChaosConfig {
	cfg := DefaultChaosConfig()
	cfg.Horizon = simtime.Seconds(200)
	cfg.Schedule = faults.Schedule{
		{At: simtime.Seconds(60), Kind: faults.NodeCrash, Target: "srv-b"},
		{At: simtime.Seconds(120), Kind: faults.NodeRestart, Target: "srv-b"},
		{At: simtime.Seconds(150), Kind: faults.LinkDegrade, Target: "srv-a", Factor: 0.5},
	}
	return cfg
}

func TestChaosCrashTriggersFailovers(t *testing.T) {
	res, err := RunChaos(shortChaosConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SessionFailures == 0 {
		t.Fatal("the crash killed no sessions")
	}
	if res.Stats.Failovers == 0 && res.Stats.BestEffortFallbacks == 0 {
		t.Fatalf("nothing recovered: %+v", res.Stats)
	}
	if res.MeanFailoverLatencySeconds() <= 0 && res.Stats.Failovers > 0 {
		t.Fatal("failover latency not recorded")
	}
	// Every applied fault shows up in the log.
	applied := 0
	for _, rec := range res.FaultLog {
		if rec.Applied {
			applied++
		}
	}
	if applied != 3 {
		t.Fatalf("applied %d faults, want 3: %+v", applied, res.FaultLog)
	}
	// A successful failover must land on a live alternate site.
	for _, ev := range res.Events {
		if ev.Err == nil && !ev.Degraded && ev.ToSite == ev.FromSite && simtime.ToSeconds(ev.At) < 120 {
			t.Fatalf("failed over onto the crashed site: %+v", ev)
		}
	}
}

func TestChaosDeterministic(t *testing.T) {
	var runs [2]*ChaosResult
	var csvs [2]bytes.Buffer
	for i := range runs {
		res, err := RunChaos(shortChaosConfig())
		if err != nil {
			t.Fatal(err)
		}
		runs[i] = res
		if err := WriteChaosCSV(&csvs[i], res); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(csvs[0].Bytes(), csvs[1].Bytes()) {
		t.Fatal("same seed produced different chaos CSVs")
	}
	if runs[0].Stats != runs[1].Stats {
		t.Fatalf("stats diverge:\n%+v\n%+v", runs[0].Stats, runs[1].Stats)
	}
	if len(csvs[0].String()) == 0 || !strings.HasPrefix(csvs[0].String(), "time_s,") {
		t.Fatalf("csv = %q", csvs[0].String())
	}
}

func TestChaosFormatMentionsMetrics(t *testing.T) {
	res, err := RunChaos(shortChaosConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := FormatChaos(res)
	for _, want := range []string{"failover latency", "frames lost", "node-crash srv-b"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatChaos output missing %q:\n%s", want, out)
		}
	}
}
