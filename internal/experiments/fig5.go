// Package experiments contains one harness per table and figure of the
// paper's evaluation (§5): Figure 5 and Table 2 (inter-frame delay under
// contention), Figure 6 (throughput of VDBMS vs VDBMS+QoS API vs QuaSAQ),
// Figure 7 (LRB vs randomized cost model), and the §5.2 overhead analysis.
// Each harness builds a fresh simulated testbed, runs the paper's workload,
// and returns the series the paper plots, plus formatted text output for
// the qsqbench CLI and EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"

	"quasaq/internal/core"
	"quasaq/internal/media"
	"quasaq/internal/qos"
	"quasaq/internal/replication"
	"quasaq/internal/runner"
	"quasaq/internal/simtime"
	"quasaq/internal/stats"
	"quasaq/internal/transport"
	"quasaq/internal/workload"
)

// Fig5Config parameterizes the inter-frame delay experiment.
type Fig5Config struct {
	Seed int64
	// Frames is the trace length; the paper plots 1000 frames.
	Frames int
	// Contention is the number of competing unmanaged streams in the
	// high-contention panels.
	Contention int
}

// DefaultFig5Config mirrors §5.1: a 23.97 fps video traced for 1000 frames;
// high contention is enough concurrent streams to push the CPU just past
// saturation, where the time-sharing scheduler falls apart.
func DefaultFig5Config() Fig5Config {
	return Fig5Config{Seed: 1, Frames: 1000, Contention: 45}
}

// DelayPanel is one of Figure 5's four panels.
type DelayPanel struct {
	Label      string
	Delays     []float64 // per-frame inter-frame delays, ms (replica 0's trace)
	InterFrame *stats.Summary
	InterGOP   *stats.Summary
	// Playout is the user-perceived consequence: a client with a one-GOP
	// buffer playing the traced frames (replica 0's trace).
	Playout transport.PlayoutReport
	// Replicas counts merged replica runs (0 or 1 means a single run).
	Replicas int
}

// Merge folds another replica's panel into p: the delay summaries absorb
// the extra samples (tightening Table 2's moments), while the plotted
// per-frame trace and the playout report stay replica 0's — one canonical
// trace, statistics over all replicas.
func (p *DelayPanel) Merge(o *DelayPanel) {
	p.InterFrame.Merge(o.InterFrame)
	p.InterGOP.Merge(o.InterGOP)
	if p.Replicas < 1 {
		p.Replicas = 1
	}
	if o.Replicas < 1 {
		p.Replicas++
	} else {
		p.Replicas += o.Replicas
	}
}

// Fig5Result bundles the four panels; Table 2 is derived from the same
// data.
type Fig5Result struct {
	Panels [4]DelayPanel
	// IdealMillis is the theoretical inter-frame delay (41.72 ms at
	// 23.97 fps).
	IdealMillis float64
}

// measuredVideoID is the traced video: corpus entry 7 is 120 s at
// 23.97 fps, long enough for a 1000-frame trace.
const measuredVideoID media.VideoID = 7

// RunFig5 reproduces Figure 5: the same video streamed under the original
// VDBMS (best-effort, round-robin CPU) and under QuaSAQ (reserved CPU and
// bandwidth), each at low and high contention, tracing server-side
// inter-frame delays. It is the serial-compatible wrapper over the fig5
// scenario; RunFig5Parallel adds worker-pool and replica control.
func RunFig5(cfg Fig5Config) (*Fig5Result, error) {
	return RunFig5Parallel(cfg, runner.Options{})
}

// idealMillis is the theoretical inter-frame delay of the measured video.
func idealMillis(seed int64) float64 {
	v := media.StandardCorpus(uint64(seed))[measuredVideoID-1]
	return 1000 / v.FrameRate
}

func runFig5Panel(cfg Fig5Config, quasaq bool, contention int, label string) (*DelayPanel, error) {
	sim := simtime.NewSimulator()
	cluster := core.TestbedCluster(sim)
	corpus := media.StandardCorpus(uint64(cfg.Seed))
	if _, err := cluster.LoadCorpus(corpus, replication.DefaultPolicy()); err != nil {
		return nil, err
	}
	rng := simtime.NewRand(cfg.Seed)
	node := cluster.Nodes["srv-a"]

	// Background daemons: the OS noise that gives even the low-contention
	// VDBMS runs their higher inter-GOP variance (Table 2: SD 64.5 vs
	// QuaSAQ's 10.1). A reserved stream preempts them; a best-effort one
	// shares quanta with them.
	for d := 0; d < 3; d++ {
		daemon := node.CPU().NewBestEffortJob(fmt.Sprintf("daemon-%d", d))
		drng := rng.Fork()
		var tick func()
		tick = func() {
			// Housekeeping bursts of 8-30 ms every 150-800 ms: long enough
			// that a best-effort stream occasionally waits a quantum or
			// two, which is where VDBMS's GOP-level jitter comes from.
			daemon.Submit(simtime.Time(drng.Uniform(8e6, 30e6)), nil)
			sim.Schedule(simtime.Time(drng.Uniform(150e6, 800e6)), tick)
		}
		sim.Schedule(simtime.Time(drng.Uniform(0, 150e6)), tick)
	}

	// Competing unmanaged streams (the "high contention" load): long
	// videos at full quality, best-effort, staggered over the first two
	// seconds.
	longVideos := []media.VideoID{8, 9, 10, 11, 12, 13, 14, 15}
	vdbms := core.NewVDBMSService(cluster)
	for i := 0; i < contention; i++ {
		id := longVideos[i%len(longVideos)]
		delay := simtime.Time(rng.Uniform(0, 2e9))
		sim.Schedule(delay, func() {
			if _, err := vdbms.Service("srv-a", id, 0, nil); err != nil {
				panic(err) // VDBMS admits everything
			}
		})
	}

	// The measured stream starts once the competition is up.
	var measured *transport.Session
	start := simtime.Seconds(3)
	errCh := make(chan error, 1)
	sim.ScheduleAt(start, func() {
		var err error
		if quasaq {
			m := core.NewManager(cluster, core.LRB{})
			req := qos.Requirement{MinResolution: qos.ResDVD, MinFrameRate: 23}
			var d *core.Delivery
			d, err = m.Service("srv-a", measuredVideoID, req, core.ServiceOptions{TraceFrames: cfg.Frames + 1})
			if err == nil {
				measured = d.Session
			}
		} else {
			measured, err = vdbms.Service("srv-a", measuredVideoID, cfg.Frames+1, nil)
		}
		if err != nil {
			errCh <- err
		}
	})
	// Run long enough for the measured video (120 s) plus slack; the
	// competing 18-minute streams keep going but we do not need them.
	sim.RunUntil(start + simtime.Seconds(200))
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	if measured == nil {
		return nil, fmt.Errorf("measured session failed to start")
	}
	delays := measured.InterFrameDelaysMillis()
	if len(delays) > cfg.Frames {
		delays = delays[:cfg.Frames]
	}
	panel := &DelayPanel{Label: label, Delays: delays, InterFrame: &stats.Summary{}, InterGOP: &stats.Summary{}}
	for _, d := range delays {
		panel.InterFrame.Add(d)
	}
	for _, d := range measured.InterGOPDelaysMillis() {
		panel.InterGOP.Add(d)
	}
	v, _ := cluster.Engine.Video(measuredVideoID)
	panel.Playout = transport.AnalyzePlayout(measured.FrameTrace().Times, v.FrameInterval(), v.GOP.Len()+1)
	return panel, nil
}

// Table2Row is one row of the paper's Table 2.
type Table2Row struct {
	Experiment string
	FrameMean  float64
	FrameSD    float64
	GOPMean    float64
	GOPSD      float64
}

// Table2 derives the paper's Table 2 from a Figure 5 run.
func Table2(r *Fig5Result) []Table2Row {
	order := []int{0, 2, 1, 3} // the paper lists VDBMS low, VDBMS high, QuaSAQ low, QuaSAQ high
	rows := make([]Table2Row, 0, 4)
	for _, i := range order {
		p := r.Panels[i]
		rows = append(rows, Table2Row{
			Experiment: p.Label,
			FrameMean:  p.InterFrame.Mean(),
			FrameSD:    p.InterFrame.StdDev(),
			GOPMean:    p.InterGOP.Mean(),
			GOPSD:      p.InterGOP.StdDev(),
		})
	}
	return rows
}

// FormatFig5 renders the four panels as ASCII plots plus summary lines.
func FormatFig5(r *Fig5Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: server-side inter-frame delays (ideal %.2f ms)\n", r.IdealMillis)
	for _, p := range r.Panels {
		fmt.Fprintf(&b, "\n%s  (n=%d, mean=%.2f ms, sd=%.2f ms; playout: %d rebuffers, %.0f ms stalled)\n",
			p.Label, p.InterFrame.N(), p.InterFrame.Mean(), p.InterFrame.StdDev(),
			p.Playout.Rebuffers, simtime.ToSeconds(p.Playout.Stalled)*1000)
		tr := &stats.Trace{}
		for i, d := range p.Delays {
			tr.Add(simtime.Time(i), d)
		}
		b.WriteString(tr.ASCIIPlot(90, 8, 0))
	}
	return b.String()
}

// FormatTable2 renders Table 2 in the paper's layout.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2: inter-frame and inter-GOP delay statistics (ms)\n")
	fmt.Fprintf(&b, "%-32s %12s %12s %12s %12s\n", "Experiment", "Frame Mean", "Frame S.D.", "GOP Mean", "GOP S.D.")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-32s %12.2f %12.2f %12.2f %12.2f\n",
			r.Experiment, r.FrameMean, r.FrameSD, r.GOPMean, r.GOPSD)
	}
	return b.String()
}

// paperWorkload builds the §5 traffic generator for a cluster.
func paperWorkload(seed int64, cluster *core.Cluster, corpus []*media.Video) *workload.Generator {
	return workload.New(workload.Config{
		Seed:   seed,
		Videos: corpus,
		Sites:  cluster.Sites(),
	})
}
