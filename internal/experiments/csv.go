package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"quasaq/internal/simtime"
)

// CSV export: each figure's series can be written as CSV for external
// plotting, one file per figure, one row per sample.

// WriteSeriesCSV writes throughput series (Figures 6/7 and ablations) as
// tidy CSV: time, system, outstanding, succeeded_per_min, cum_rejects.
func WriteSeriesCSV(w io.Writer, series []*Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "system", "outstanding", "succeeded_per_min", "cum_rejects"}); err != nil {
		return err
	}
	for _, s := range series {
		for i := range s.Outstanding {
			t := float64(i+1) * simtime.ToSeconds(s.Bucket)
			row := []string{
				strconv.FormatFloat(t, 'f', 1, 64),
				s.System.String(),
				strconv.FormatFloat(s.Outstanding[i], 'f', 1, 64),
				strconv.FormatFloat(at(s.SucceededPM, i), 'f', 2, 64),
				strconv.FormatFloat(at(s.CumRejects, i), 'f', 0, 64),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig5CSV writes the four delay panels as tidy CSV: frame, panel,
// delay_ms.
func WriteFig5CSV(w io.Writer, r *Fig5Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"frame", "panel", "delay_ms"}); err != nil {
		return err
	}
	for _, p := range r.Panels {
		for i, d := range p.Delays {
			if err := cw.Write([]string{
				strconv.Itoa(i),
				p.Label,
				strconv.FormatFloat(d, 'f', 3, 64),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes a figure's CSV into dir with a conventional name,
// creating dir if needed.
func SaveCSV(dir, name string, write func(io.Writer) error) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	if err := write(f); err != nil {
		return "", fmt.Errorf("experiments: write %s: %w", path, err)
	}
	return path, nil
}

func at(xs []float64, i int) float64 {
	if i < len(xs) {
		return xs[i]
	}
	return 0
}
