package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"quasaq/internal/simtime"
)

// CSV export: each figure's series can be written as CSV for external
// plotting, one file per figure, one row per sample. Every scenario emits
// through one code path — a Table built by its *Table function and written
// by WriteTable — so quoting, line endings, and determinism are decided in
// exactly one place.

// Table is a rendered experiment output: a header plus data rows.
type Table struct {
	Header []string
	Rows   [][]string
}

// WriteTable writes the table as CSV. Deterministic: same table -> same
// bytes, regardless of how many workers produced the rows.
func WriteTable(w io.Writer, t Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SeriesTable renders throughput series (Figures 6/7 and ablations) as a
// tidy table: time, system, outstanding, succeeded_per_min, cum_rejects.
// Replica-merged series emit cross-replica means.
func SeriesTable(series []*Series) Table {
	t := Table{Header: []string{"time_s", "system", "outstanding", "succeeded_per_min", "cum_rejects"}}
	for _, s := range series {
		reps := float64(s.Reps())
		for i := range s.Outstanding {
			sec := float64(i+1) * simtime.ToSeconds(s.Bucket)
			t.Rows = append(t.Rows, []string{
				strconv.FormatFloat(sec, 'f', 1, 64),
				s.DisplayName(),
				strconv.FormatFloat(s.Outstanding[i]/reps, 'f', 1, 64),
				strconv.FormatFloat(at(s.SucceededPM, i)/reps, 'f', 2, 64),
				strconv.FormatFloat(at(s.CumRejects, i)/reps, 'f', 1, 64),
			})
		}
	}
	return t
}

// Fig5Table renders the four delay panels: frame, panel, delay_ms
// (replica 0's trace — see DelayPanel.Merge).
func Fig5Table(r *Fig5Result) Table {
	t := Table{Header: []string{"frame", "panel", "delay_ms"}}
	for _, p := range r.Panels {
		for i, d := range p.Delays {
			t.Rows = append(t.Rows, []string{
				strconv.Itoa(i),
				p.Label,
				strconv.FormatFloat(d, 'f', 3, 64),
			})
		}
	}
	return t
}

// ChaosTable renders the recovery events, one row per concluded recovery
// (replica 0's event log — see ChaosResult.Merge).
func ChaosTable(r *ChaosResult) Table {
	t := Table{Header: []string{"time_s", "video", "from_site", "to_site", "latency_s", "frames_lost", "attempts", "outcome"}}
	for _, ev := range r.Events {
		t.Rows = append(t.Rows, []string{
			strconv.FormatFloat(simtime.ToSeconds(ev.At), 'f', 3, 64),
			strconv.FormatUint(uint64(ev.Video), 10),
			ev.FromSite,
			ev.ToSite,
			strconv.FormatFloat(simtime.ToSeconds(ev.Latency), 'f', 3, 64),
			strconv.FormatFloat(ev.Frames, 'f', 1, 64),
			strconv.Itoa(ev.Attempts),
			outcomeOf(ev),
		})
	}
	return t
}

// WriteSeriesCSV writes throughput series as tidy CSV.
func WriteSeriesCSV(w io.Writer, series []*Series) error {
	return WriteTable(w, SeriesTable(series))
}

// WriteFig5CSV writes the four delay panels as tidy CSV.
func WriteFig5CSV(w io.Writer, r *Fig5Result) error {
	return WriteTable(w, Fig5Table(r))
}

// WriteChaosCSV writes the recovery events as tidy CSV.
func WriteChaosCSV(w io.Writer, r *ChaosResult) error {
	return WriteTable(w, ChaosTable(r))
}

// SaveCSV writes a figure's CSV into dir with a conventional name,
// creating dir if needed.
func SaveCSV(dir, name string, write func(io.Writer) error) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	if err := write(f); err != nil {
		return "", fmt.Errorf("experiments: write %s: %w", path, err)
	}
	return path, nil
}

func at(xs []float64, i int) float64 {
	if i < len(xs) {
		return xs[i]
	}
	return 0
}
