package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"quasaq/internal/core"
	"quasaq/internal/edgecache"
	"quasaq/internal/media"
	"quasaq/internal/metadata"
	"quasaq/internal/replication"
	"quasaq/internal/runner"
	"quasaq/internal/simtime"
	"quasaq/internal/stats"
	"quasaq/internal/workload"
)

// The edge experiment measures what the proxy-cache tier buys: the same
// Zipf-skewed diurnal workload (with a flash-crowd spike) runs once against
// the plain origin-only testbed and once with two cooperative edge sites
// caching hot prefixes. Per mode it reports viewer startup latency
// (p50/p90/p99), the edge hit ratio, how many planned delivery bytes the
// tier kept off the origin links, and the reject rate — the acceptance
// claim is lower startup tails and measurable origin offload at a reject
// rate no worse than edge-less.
//
// Startup latency is modeled, not streamed: an admitted viewer waits one
// round trip to the site serving its first frame plus a queueing term that
// grows with that site's bucket fill at admission (Eq. 1's (U+r)/R for the
// first leg's demand). Edge sites sit client-side of the backbone, so their
// RTT is a fraction of the origins' — the split plan's whole point.
// Offload is likewise planned bytes: a split plan serves the GOPs before
// the handover boundary from the edge copy and only the tail from an
// origin.

// EdgeMode names one sweep point.
const (
	EdgeModeOff = "edgeless"
	EdgeModeOn  = "edge"
)

// EdgeExpConfig parameterizes the comparison.
type EdgeExpConfig struct {
	Seed     int64
	BaseLoad float64          // queries per second at phase rate 1
	ZipfSkew float64          // catalog popularity skew
	Phases   []workload.Phase // diurnal ramp with a flash-crowd spike
	Edge     edgecache.Config // cache policy for the edge point
	Sites    []core.EdgeSite  // edge sites for the edge point

	OriginRTTms float64 // round trip to an origin site
	EdgeRTTms   float64 // round trip to an edge site
	QueueMs     float64 // queueing scale; the term is QueueMs·fill/(1.1−fill)
}

// DefaultEdgeExpConfig is a 160 s diurnal curve — quiet, busy, quiet — with
// a 20 s flash crowd at 6x base load, over a Zipf(1.5) catalog so a hot
// head dominates. The cache admits a prefix after 2 hits in a decay window,
// budgets 192 MB per edge site, and promotes sustained-hot prefixes to full
// edge replicas.
func DefaultEdgeExpConfig() EdgeExpConfig {
	return EdgeExpConfig{
		Seed:     47,
		BaseLoad: 0.5,
		ZipfSkew: 1.5,
		Phases: []workload.Phase{
			{Rate: 1, Duration: simtime.Seconds(30)},
			{Rate: 3, Duration: simtime.Seconds(50)},
			{Rate: 6, Duration: simtime.Seconds(20)}, // flash crowd
			{Rate: 3, Duration: simtime.Seconds(30)},
			{Rate: 1, Duration: simtime.Seconds(30)},
		},
		Edge: edgecache.Config{
			MinHits:    2,
			PrefixGOPs: 12,
			Interval:   simtime.Seconds(5),
			ByteBudget: 192 << 20,
			// A low promotion threshold lets flash-crowd popularity upgrade
			// hot prefixes to full edge replicas quickly; only full copies
			// take their tails off the origin links.
			PromoteHits: 10,
		},
		Sites:       []core.EdgeSite{{Name: "edge-a"}, {Name: "edge-b"}},
		OriginRTTms: 60,
		EdgeRTTms:   8,
		QueueMs:     80,
	}
}

// Horizon is the arrival window: the sum of the phase durations.
func (c EdgeExpConfig) Horizon() simtime.Time {
	var h simtime.Time
	for _, p := range c.Phases {
		h += p.Duration
	}
	return h
}

// EdgePoint is one mode's outcome.
type EdgePoint struct {
	Mode string

	Queries   int
	Admitted  int
	Rejected  int
	Completed int
	Failed    int

	SplitAdmissions uint64
	Handovers       uint64

	Startup *stats.Sample // modeled viewer startup latency, ms

	// Planned delivery bytes by serving tier (the offload measure).
	OriginBytes int64
	EdgeBytes   int64

	Edge edgecache.Stats

	Replicas int
}

func (p *EdgePoint) reps() int {
	if p.Replicas < 1 {
		return 1
	}
	return p.Replicas
}

// Merge folds another replica's point in.
func (p *EdgePoint) Merge(o *EdgePoint) {
	p.Queries += o.Queries
	p.Admitted += o.Admitted
	p.Rejected += o.Rejected
	p.Completed += o.Completed
	p.Failed += o.Failed
	p.SplitAdmissions += o.SplitAdmissions
	p.Handovers += o.Handovers
	for _, x := range o.Startup.Values() {
		p.Startup.Add(x)
	}
	p.OriginBytes += o.OriginBytes
	p.EdgeBytes += o.EdgeBytes
	p.Edge.Hits += o.Edge.Hits
	p.Edge.Misses += o.Edge.Misses
	p.Edge.Installs += o.Edge.Installs
	p.Edge.Evictions += o.Edge.Evictions
	p.Edge.NeighborFills += o.Edge.NeighborFills
	p.Edge.OriginFills += o.Edge.OriginFills
	p.Edge.Promotions += o.Edge.Promotions
	p.Edge.BytesUsed += o.Edge.BytesUsed
	p.Replicas = p.reps() + o.reps()
}

// RejectRate returns rejected / queries.
func (p *EdgePoint) RejectRate() float64 {
	if p.Queries == 0 {
		return 0
	}
	return float64(p.Rejected) / float64(p.Queries)
}

// OffloadFraction returns the share of planned delivery bytes served from
// edge copies.
func (p *EdgePoint) OffloadFraction() float64 {
	total := p.OriginBytes + p.EdgeBytes
	if total == 0 {
		return 0
	}
	return float64(p.EdgeBytes) / float64(total)
}

// legBytes sizes the [from, to) frame range of a replica's variant in
// bytes, GOP by GOP — the planned load its leg puts on the serving site.
func legBytes(v *media.Video, va media.Variant, from, to int) int64 {
	gop := v.GOP.Len()
	var total int64
	for f := from - from%gop; f < to; f += gop {
		total += va.GOPSize(v, f)
	}
	return total
}

// RunEdgePoint runs one mode in a hermetic world and drains it completely.
func RunEdgePoint(cfg EdgeExpConfig, mode string, seed int64) (*EdgePoint, error) {
	if mode != EdgeModeOff && mode != EdgeModeOn {
		return nil, fmt.Errorf("experiments: unknown edge mode %q", mode)
	}
	if cfg.BaseLoad <= 0 {
		return nil, fmt.Errorf("experiments: non-positive base load %v", cfg.BaseLoad)
	}
	if len(cfg.Phases) == 0 {
		return nil, fmt.Errorf("experiments: edge needs a phase schedule")
	}

	sim := simtime.NewSimulator()
	cluster := core.TestbedCluster(sim)
	corpus := media.StandardCorpus(uint64(seed))
	if _, err := cluster.LoadCorpus(corpus, replication.DefaultPolicy()); err != nil {
		return nil, err
	}
	mgr := core.NewManager(cluster, core.LRB{})

	var ec *edgecache.Manager
	if mode == EdgeModeOn {
		var err error
		ec, err = mgr.EnableEdgeTier(cfg.Sites, cfg.Edge)
		if err != nil {
			return nil, err
		}
		sites := cluster.Sites()
		for i, s := range sites {
			ec.MapClient(s, cfg.Sites[i%len(cfg.Sites)].Name)
		}
	}

	out := &EdgePoint{Mode: mode, Startup: &stats.Sample{}}
	jitter := simtime.NewRand(seed ^ 0x5eed)
	gen := workload.New(workload.Config{
		Seed:             seed,
		Videos:           corpus,
		Sites:            cluster.Sites(),
		MeanInterArrival: simtime.Seconds(1 / cfg.BaseLoad),
		ZipfSkew:         cfg.ZipfSkew,
		Phases:           cfg.Phases,
	})
	gen.Drive(sim, cfg.Horizon(), func(r workload.Request) {
		out.Queries++
		if ec != nil {
			ec.Observe(r.Site, r.Video)
		}
		mgr.ServiceAsync(r.Site, r.Video, r.Req, core.ServiceOptions{
			OnDone:   func(*core.Delivery) { out.Completed++ },
			OnFailed: func(*core.Delivery, error) { out.Failed++ },
		}, func(d *core.Delivery, err error) {
			if err != nil {
				out.Rejected++
				return
			}
			out.Admitted++
			out.observeAdmission(cfg, cluster, d, jitter)
		})
	})
	sim.Run()

	if got := out.Admitted + out.Rejected; got != out.Queries {
		return nil, fmt.Errorf("experiments: %d of %d edge admissions never settled", out.Queries-got, out.Queries)
	}
	if got := out.Completed + out.Failed; got != out.Admitted {
		return nil, fmt.Errorf("experiments: %d of %d edge sessions never concluded", out.Admitted-got, out.Admitted)
	}
	ms := mgr.Stats()
	out.SplitAdmissions = ms.SplitAdmissions
	out.Handovers = ms.Handovers
	if ec != nil {
		out.Edge = ec.Stats()
	}
	return out, nil
}

// observeAdmission records the modeled startup latency and the planned
// per-tier byte load of one admitted delivery.
func (out *EdgePoint) observeAdmission(cfg EdgeExpConfig, cluster *core.Cluster, d *core.Delivery, jitter *simtime.Rand) {
	p := d.Plan
	v := d.Video()

	// The first frame comes from the delivery site: either an edge copy
	// (prefix leg of a split plan, or a promoted full edge replica) or an
	// origin. Bytes are attributed to the tier of the site that streams
	// them — a split plan's tail counts against the origin links.
	fromEdge := cluster.Dir.Tier(p.DeliverySite) == metadata.TierEdge
	rtt := cfg.OriginRTTms
	if fromEdge {
		rtt = cfg.EdgeRTTms
	}
	fill := 0.0
	if u, c, err := cluster.Usage(p.DeliverySite); err == nil {
		fill = p.DeliveryDemand.MaxFillRatio(u, c)
		if fill > 1 {
			fill = 1
		}
	}
	// One round trip to the first-frame site, an M/M/1-style queueing term
	// that blows up as the serving site approaches saturation (this is what
	// separates the tails: offload keeps origin fill lower during the flash
	// crowd), and ±10% deterministic jitter.
	ms := rtt + cfg.QueueMs*fill/(1.1-fill)
	ms *= 0.9 + 0.2*jitter.Float64()
	out.Startup.Add(ms)

	switch {
	case p.Split():
		out.EdgeBytes += legBytes(v, p.Replica.Variant, 0, p.SplitFrame)
		out.OriginBytes += legBytes(v, p.TailReplica.Variant, p.SplitFrame, v.Frames())
	case fromEdge:
		out.EdgeBytes += legBytes(v, p.Replica.Variant, 0, v.Frames())
	default:
		out.OriginBytes += legBytes(v, p.Replica.Variant, 0, v.Frames())
	}
}

// EdgeScenario sweeps the two modes as runner points.
type EdgeScenario struct {
	Cfg EdgeExpConfig
}

// Name implements runner.Scenario.
func (s *EdgeScenario) Name() string { return "edge" }

// Points implements runner.Scenario.
func (s *EdgeScenario) Points() []runner.Point {
	return []runner.Point{
		{Key: EdgeModeOff, Label: "origin-only"},
		{Key: EdgeModeOn, Label: "edge tier"},
	}
}

// Run implements runner.Scenario.
func (s *EdgeScenario) Run(p runner.Point, seed int64) (*EdgePoint, error) {
	return RunEdgePoint(s.Cfg, p.Key, seed)
}

// RunEdge runs both modes serially.
func RunEdge(cfg EdgeExpConfig) ([]*EdgePoint, error) {
	return RunEdgeParallel(cfg, runner.Options{})
}

// RunEdgeParallel is RunEdge with worker-pool and replica control.
func RunEdgeParallel(cfg EdgeExpConfig, opts runner.Options) ([]*EdgePoint, error) {
	opts.Seed = cfg.Seed
	prs, err := runner.Sweep[*EdgePoint](&EdgeScenario{Cfg: cfg}, opts)
	if err != nil {
		return nil, err
	}
	out := make([]*EdgePoint, len(prs))
	for i, pr := range prs {
		out[i] = pr.Result
	}
	return out, nil
}

// EdgeTable renders the comparison as tidy CSV: one row per mode.
func EdgeTable(points []*EdgePoint) Table {
	t := Table{Header: []string{
		"mode", "queries", "admitted", "rejected", "reject_rate",
		"completed", "failed", "split_admissions", "handovers",
		"startup_ms_p50", "startup_ms_p90", "startup_ms_p99",
		"edge_hit_ratio", "edge_installs", "edge_evictions", "edge_promotions",
		"origin_mb", "edge_mb", "origin_offload",
	}}
	for _, p := range points {
		reps := p.reps()
		t.Rows = append(t.Rows, []string{
			p.Mode,
			fmtCount(p.Queries, reps),
			fmtCount(p.Admitted, reps),
			fmtCount(p.Rejected, reps),
			fmt.Sprintf("%.4f", p.RejectRate()),
			fmtCount(p.Completed, reps),
			fmtCount(p.Failed, reps),
			fmtCount(int(p.SplitAdmissions), reps),
			fmtCount(int(p.Handovers), reps),
			fmt.Sprintf("%.2f", p.Startup.Percentile(50)),
			fmt.Sprintf("%.2f", p.Startup.Percentile(90)),
			fmt.Sprintf("%.2f", p.Startup.Percentile(99)),
			fmt.Sprintf("%.4f", p.Edge.HitRatio()),
			fmtCount(int(p.Edge.Installs), reps),
			fmtCount(int(p.Edge.Evictions), reps),
			fmtCount(int(p.Edge.Promotions), reps),
			fmt.Sprintf("%.1f", float64(p.OriginBytes)/float64(reps)/(1<<20)),
			fmt.Sprintf("%.1f", float64(p.EdgeBytes)/float64(reps)/(1<<20)),
			fmt.Sprintf("%.4f", p.OffloadFraction()),
		})
	}
	return t
}

// WriteEdgeCSV writes the comparison as tidy CSV.
func WriteEdgeCSV(w io.Writer, points []*EdgePoint) error {
	return WriteTable(w, EdgeTable(points))
}

// FormatEdge renders the comparison as a console table.
func FormatEdge(cfg EdgeExpConfig, points []*EdgePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "edge: %.0f s diurnal + flash crowd, Zipf %.1f, %d edge sites @ %d MB",
		simtime.ToSeconds(cfg.Horizon()), cfg.ZipfSkew, len(cfg.Sites), cfg.Edge.ByteBudget>>20)
	if len(points) > 0 && points[0].reps() > 1 {
		fmt.Fprintf(&b, "  (mean of %d replicas)", points[0].reps())
	}
	b.WriteString("\n\n")
	fmt.Fprintf(&b, "%-10s %8s %9s %8s %7s %7s %10s %10s %10s %9s %9s\n",
		"mode", "queries", "admitted", "rejects", "splits", "handoff",
		"start-p50", "start-p99", "hit-ratio", "origin-MB", "offload")
	for _, p := range points {
		reps := p.reps()
		fmt.Fprintf(&b, "%-10s %8s %9s %8s %7s %7s %10.1f %10.1f %10.3f %9.1f %9.3f\n",
			p.Mode, fmtCount(p.Queries, reps), fmtCount(p.Admitted, reps),
			fmtCount(p.Rejected, reps), fmtCount(int(p.SplitAdmissions), reps),
			fmtCount(int(p.Handovers), reps),
			p.Startup.Percentile(50), p.Startup.Percentile(99),
			p.Edge.HitRatio(), float64(p.OriginBytes)/float64(reps)/(1<<20),
			p.OffloadFraction())
	}
	return strings.TrimRight(b.String(), "\n")
}

// edgeBench is the archived benchmark record (BENCH_edge.json).
type edgeBench struct {
	Experiment string           `json:"experiment"`
	Seed       int64            `json:"seed"`
	Replicas   int              `json:"replicas"`
	HorizonS   float64          `json:"horizon_s"`
	ZipfSkew   float64          `json:"zipf_skew"`
	Modes      []edgeBenchPoint `json:"modes"`
}

type edgeBenchPoint struct {
	Mode            string  `json:"mode"`
	Queries         int     `json:"queries"`
	Admitted        int     `json:"admitted"`
	Rejected        int     `json:"rejected"`
	RejectRate      float64 `json:"reject_rate"`
	Completed       int     `json:"completed"`
	Failed          int     `json:"failed"`
	SplitAdmissions uint64  `json:"split_admissions"`
	Handovers       uint64  `json:"handovers"`
	StartupP50Ms    float64 `json:"startup_ms_p50"`
	StartupP90Ms    float64 `json:"startup_ms_p90"`
	StartupP99Ms    float64 `json:"startup_ms_p99"`
	EdgeHitRatio    float64 `json:"edge_hit_ratio"`
	EdgeInstalls    uint64  `json:"edge_installs"`
	EdgeEvictions   uint64  `json:"edge_evictions"`
	EdgePromotions  uint64  `json:"edge_promotions"`
	OriginMB        float64 `json:"origin_mb"`
	EdgeMB          float64 `json:"edge_mb"`
	OriginOffload   float64 `json:"origin_offload"`
}

// WriteEdgeJSON archives the run as an indented JSON benchmark record.
func WriteEdgeJSON(w io.Writer, cfg EdgeExpConfig, points []*EdgePoint) error {
	b := edgeBench{
		Experiment: "edge",
		Seed:       cfg.Seed,
		HorizonS:   simtime.ToSeconds(cfg.Horizon()),
		ZipfSkew:   cfg.ZipfSkew,
	}
	for _, p := range points {
		reps := p.reps()
		b.Replicas = reps
		b.Modes = append(b.Modes, edgeBenchPoint{
			Mode:            p.Mode,
			Queries:         p.Queries,
			Admitted:        p.Admitted,
			Rejected:        p.Rejected,
			RejectRate:      p.RejectRate(),
			Completed:       p.Completed,
			Failed:          p.Failed,
			SplitAdmissions: p.SplitAdmissions,
			Handovers:       p.Handovers,
			StartupP50Ms:    p.Startup.Percentile(50),
			StartupP90Ms:    p.Startup.Percentile(90),
			StartupP99Ms:    p.Startup.Percentile(99),
			EdgeHitRatio:    p.Edge.HitRatio(),
			EdgeInstalls:    p.Edge.Installs,
			EdgeEvictions:   p.Edge.Evictions,
			EdgePromotions:  p.Edge.Promotions,
			OriginMB:        float64(p.OriginBytes) / float64(reps) / (1 << 20),
			EdgeMB:          float64(p.EdgeBytes) / float64(reps) / (1 << 20),
			OriginOffload:   p.OffloadFraction(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
