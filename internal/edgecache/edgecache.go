// Package edgecache implements the cooperative edge proxy-cache tier: each
// edge site prefix-caches the first GOPs of popular videos near its clients
// (the cooperative VoD proxy architecture — prefix caching slashes startup
// latency while the origin streams the tail), cooperates with its neighbor
// edges (neighbor lookup before origin fetch when a prefix is installed),
// and promotes sustained-popular prefixes to full replicas, either in place
// when the byte budget allows or by feeding demand into the dynamic
// replicator.
//
// All state advances on the simulation clock: popularity is counted as
// queries arrive, and a periodic tick admits the hottest uncached prefixes,
// evicts cold ones under space pressure, and halves every counter so the
// cache tracks the current workload, not all of history. Installs and
// evictions register/deregister partial replicas in the metadata directory,
// so each transition bumps the topology epoch exactly once and the plan
// cache invalidates correctly.
package edgecache

import (
	"sort"
	"sync"

	"quasaq/internal/media"
	"quasaq/internal/metadata"
	"quasaq/internal/obs"
	"quasaq/internal/qos"
	"quasaq/internal/replication"
	"quasaq/internal/simtime"
	"quasaq/internal/storage"
)

// Config tunes the edge tier's caching behavior. The zero value selects
// the defaults documented on each field.
type Config struct {
	// PrefixGOPs is how many leading GOPs each cached prefix holds
	// (default 8 — about five seconds of MPEG-1 video).
	PrefixGOPs int
	// ByteBudget caps each edge site's prefix store (default 64 MB).
	ByteBudget int64
	// Interval is the admission/eviction tick period (default 5 s).
	Interval simtime.Time
	// MinHits is the popularity a video must reach within one tick window
	// before its prefix is admitted (default 2).
	MinHits int
	// PromoteHits is the cumulative popularity at which a prefix is
	// promoted to a full replica (default 24).
	PromoteHits int
}

func (c Config) withDefaults() Config {
	if c.PrefixGOPs <= 0 {
		c.PrefixGOPs = 8
	}
	if c.ByteBudget <= 0 {
		c.ByteBudget = 64 << 20
	}
	if c.Interval <= 0 {
		c.Interval = simtime.Seconds(5)
	}
	if c.MinHits <= 0 {
		c.MinHits = 2
	}
	if c.PromoteHits <= 0 {
		c.PromoteHits = 24
	}
	return c
}

// entry is one installed prefix at one edge site.
type entry struct {
	rep   *metadata.Replica
	video *media.Video
	bytes int64
	hot   int // decayed popularity (halved each tick)
	life  int // cumulative popularity driving promotion
}

// siteCache is one edge site's prefix store.
type siteCache struct {
	name    string
	blobs   *storage.BlobStore
	store   *metadata.Store
	used    int64
	entries map[media.VideoID]*entry
	want    map[media.VideoID]int // popularity of not-yet-installed videos

	installs, evictions, hits, misses *obs.Counter
	neighborFills, originFills        *obs.Counter
	promotions                        *obs.Counter
	bytesGauge                        *obs.Gauge
}

// Stats is a point-in-time summary of the whole edge tier.
type Stats struct {
	Sites         int
	Prefixes      int   // prefixes currently installed (full promotions excluded)
	FullReplicas  int   // in-place promotions currently resident
	BytesUsed     int64 // resident bytes across all edge sites
	Hits          uint64
	Misses        uint64
	Installs      uint64
	Evictions     uint64
	NeighborFills uint64
	OriginFills   uint64
	Promotions    uint64
}

// HitRatio returns the fraction of observed queries whose home edge held
// the video at observation time.
func (s Stats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Manager owns every edge site's prefix cache and their cooperation.
type Manager struct {
	mu     sync.Mutex
	sim    *simtime.Simulator
	dir    *metadata.Directory
	videos map[media.VideoID]*media.Video
	cfg    Config
	reg    *obs.Registry

	sites  []*siteCache // sorted by name; tick order
	byName map[string]*siteCache
	homes  map[string]string // query site -> its home edge site

	// promote, when set, receives demand for prefixes too popular to keep
	// partial but too large to hold fully at the edge — the hand-off into
	// replication.Dynamic.
	promote func(media.VideoID, media.LinkClass, int)

	started bool
	ticker  *simtime.Ticker
}

// New creates the edge-tier manager. reg may be nil (metrics become
// no-ops).
func New(sim *simtime.Simulator, dir *metadata.Directory, videos []*media.Video, reg *obs.Registry, cfg Config) *Manager {
	vm := make(map[media.VideoID]*media.Video, len(videos))
	for _, v := range videos {
		vm[v.ID] = v
	}
	return &Manager{
		sim:    sim,
		dir:    dir,
		videos: vm,
		cfg:    cfg.withDefaults(),
		reg:    reg,
		byName: make(map[string]*siteCache),
		homes:  make(map[string]string),
	}
}

// Config returns the effective (defaulted) configuration.
func (m *Manager) Config() Config { return m.cfg }

// AddSite registers an edge site's blob store and metadata store with the
// cache. Sites tick in name order regardless of registration order.
func (m *Manager) AddSite(name string, blobs *storage.BlobStore, store *metadata.Store) {
	m.mu.Lock()
	defer m.mu.Unlock()
	sc := &siteCache{
		name:          name,
		blobs:         blobs,
		store:         store,
		entries:       make(map[media.VideoID]*entry),
		want:          make(map[media.VideoID]int),
		installs:      m.reg.Counter("quasaq_edge_installs_total", "site", name),
		evictions:     m.reg.Counter("quasaq_edge_evictions_total", "site", name),
		hits:          m.reg.Counter("quasaq_edge_hits_total", "site", name),
		misses:        m.reg.Counter("quasaq_edge_misses_total", "site", name),
		neighborFills: m.reg.Counter("quasaq_edge_neighbor_fills_total", "site", name),
		originFills:   m.reg.Counter("quasaq_edge_origin_fills_total", "site", name),
		promotions:    m.reg.Counter("quasaq_edge_promotions_total", "site", name),
		bytesGauge:    m.reg.Gauge("quasaq_edge_bytes", "site", name),
	}
	m.sites = append(m.sites, sc)
	sort.Slice(m.sites, func(i, j int) bool { return m.sites[i].name < m.sites[j].name })
	m.byName[name] = sc
}

// MapClient declares edgeSite as the home edge for queries arriving at
// querySite; popularity observed there accrues to that edge's cache.
func (m *Manager) MapClient(querySite, edgeSite string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.homes[querySite] = edgeSite
}

// HomeEdge returns the home edge site for a query site ("" when unmapped).
func (m *Manager) HomeEdge(querySite string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.homes[querySite]
}

// SetPromote installs the overflow-promotion sink (replication.Dynamic's
// demand feed).
func (m *Manager) SetPromote(fn func(media.VideoID, media.LinkClass, int)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.promote = fn
}

// Observe records one query for the video as seen from querySite,
// accruing popularity at its home edge and counting whether that edge
// already held the video (the edge hit ratio).
func (m *Manager) Observe(querySite string, id media.VideoID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	sc := m.byName[m.homes[querySite]]
	if sc == nil {
		return
	}
	m.armLocked()
	if e, ok := sc.entries[id]; ok {
		e.hot++
		e.life++
		sc.hits.Inc()
		return
	}
	sc.want[id]++
	sc.misses.Inc()
}

// Holds reports whether the edge site currently has the video resident
// (prefix or promoted full copy) — the neighbor-lookup primitive.
func (m *Manager) Holds(edgeSite string, id media.VideoID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	sc := m.byName[edgeSite]
	if sc == nil {
		return false
	}
	_, ok := sc.entries[id]
	return ok
}

// Start schedules the periodic admission/eviction tick on the sim clock.
// The ticker parks itself once every popularity counter has decayed to
// zero — an idle cache leaves no pending events, so RunUntilIdle still
// terminates — and the next Observe re-arms it.
func (m *Manager) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.started = true
	m.armLocked()
}

// Stop halts the periodic tick.
func (m *Manager) Stop() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.started = false
	if m.ticker != nil {
		m.ticker.Stop()
		m.ticker = nil
	}
}

func (m *Manager) armLocked() {
	if !m.started || m.ticker != nil {
		return
	}
	m.ticker = m.sim.Every(m.cfg.Interval, func() bool {
		m.mu.Lock()
		defer m.mu.Unlock()
		m.tickLocked()
		if m.warmLocked() {
			return true
		}
		m.ticker = nil
		return false
	})
}

// warmLocked reports whether any popularity counter is still non-zero; a
// cold cache parks its ticker until the next observation.
func (m *Manager) warmLocked() bool {
	for _, sc := range m.sites {
		if len(sc.want) > 0 {
			return true
		}
		for _, e := range sc.entries {
			if e.hot > 0 {
				return true
			}
		}
	}
	return false
}

// Tick runs one admission/eviction/promotion round across every edge site
// (in name order, so runs are deterministic) and then decays popularity.
func (m *Manager) Tick() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tickLocked()
}

func (m *Manager) tickLocked() {
	for _, sc := range m.sites {
		m.admit(sc)
		m.promoteHot(sc)
	}
	for _, sc := range m.sites {
		m.decay(sc)
	}
}

// admit installs the hottest wanted prefixes that fit, evicting strictly
// colder residents to make room. The byte budget is checked before every
// blob create, so it is never exceeded.
func (m *Manager) admit(sc *siteCache) {
	type cand struct {
		id  media.VideoID
		hot int
	}
	var cands []cand
	for id, n := range sc.want {
		if n >= m.cfg.MinHits {
			cands = append(cands, cand{id, n})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].hot != cands[j].hot {
			return cands[i].hot > cands[j].hot
		}
		return cands[i].id < cands[j].id
	})
	for _, c := range cands {
		v := m.videos[c.id]
		if v == nil {
			delete(sc.want, c.id)
			continue
		}
		rep, ok := m.sourceReplica(sc.name, c.id)
		if !ok {
			continue // nothing full to copy from anywhere
		}
		bytes := prefixBytes(v, rep.Variant, m.cfg.PrefixGOPs)
		if bytes > m.cfg.ByteBudget {
			continue
		}
		if !m.makeRoom(sc, bytes, c.hot) {
			continue
		}
		if m.install(sc, v, rep.Variant, bytes, c.hot) {
			delete(sc.want, c.id)
		}
	}
}

// sourceReplica picks the full replica whose variant the prefix copies:
// the highest-bitrate complete copy visible from the edge site, ties
// broken by the directory's deterministic (site, seq) order.
func (m *Manager) sourceReplica(from string, id media.VideoID) (*metadata.Replica, bool) {
	var best *metadata.Replica
	for _, r := range m.dir.Lookup(from, id) {
		if !r.Full() {
			continue
		}
		if best == nil || r.Variant.Bitrate > best.Variant.Bitrate {
			best = r
		}
	}
	return best, best != nil
}

// makeRoom evicts residents strictly colder than hot (coldest first, ties
// by video ID) until bytes fit in the budget. It reports whether the
// space was freed; nothing is evicted when it cannot be.
func (m *Manager) makeRoom(sc *siteCache, bytes int64, hot int) bool {
	if sc.used+bytes <= m.cfg.ByteBudget {
		return true
	}
	type victim struct {
		id media.VideoID
		e  *entry
	}
	var vs []victim
	freeable := m.cfg.ByteBudget - sc.used
	for id, e := range sc.entries {
		if e.hot < hot {
			vs = append(vs, victim{id, e})
			freeable += e.bytes
		}
	}
	if freeable < bytes {
		return false
	}
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].e.hot != vs[j].e.hot {
			return vs[i].e.hot < vs[j].e.hot
		}
		return vs[i].id < vs[j].id
	})
	for _, v := range vs {
		if sc.used+bytes <= m.cfg.ByteBudget {
			break
		}
		m.evict(sc, v.id, v.e)
	}
	return sc.used+bytes <= m.cfg.ByteBudget
}

// install materializes the prefix: neighbor lookup decides where the
// bytes notionally came from, the blob lands in the edge's store, and the
// partial replica registers in the directory — one epoch bump.
func (m *Manager) install(sc *siteCache, v *media.Video, va media.Variant, bytes int64, hot int) bool {
	blob, err := sc.blobs.Create(bytes, v.Seed^uint64(len(sc.name))<<48^uint64(v.ID)<<16)
	if err != nil {
		return false
	}
	rep := &metadata.Replica{
		Video:      v.ID,
		Site:       sc.name,
		Variant:    va,
		Blob:       blob.ID,
		Profile:    replication.SampleProfile(v, va),
		PrefixGOPs: m.cfg.PrefixGOPs,
	}
	if err := sc.store.Add(rep); err != nil {
		sc.blobs.Delete(blob.ID) //nolint:errcheck // undo of a create that just succeeded
		return false
	}
	if m.neighborHolds(sc.name, v.ID) {
		sc.neighborFills.Inc()
	} else {
		sc.originFills.Inc()
	}
	sc.entries[v.ID] = &entry{rep: rep, video: v, bytes: bytes, hot: hot, life: hot}
	sc.used += bytes
	sc.installs.Inc()
	sc.bytesGauge.Set(sc.used)
	m.dir.Invalidate(v.ID)
	return true
}

// neighborHolds scans the other edge sites for a resident copy.
func (m *Manager) neighborHolds(except string, id media.VideoID) bool {
	for _, other := range m.sites {
		if other.name == except {
			continue
		}
		if _, ok := other.entries[id]; ok {
			return true
		}
	}
	return false
}

// evict removes a resident prefix: blob deleted, replica deregistered —
// one epoch bump.
func (m *Manager) evict(sc *siteCache, id media.VideoID, e *entry) {
	sc.store.Remove(e.rep)
	sc.blobs.Delete(e.rep.Blob) //nolint:errcheck // blob was created by install
	delete(sc.entries, id)
	sc.used -= e.bytes
	sc.evictions.Inc()
	sc.bytesGauge.Set(sc.used)
	m.dir.Invalidate(id)
}

// promoteHot upgrades sustained-popular prefixes: in place to a full edge
// replica when the budget allows, otherwise by handing the demand to the
// dynamic replicator so an origin site materializes the full copy.
func (m *Manager) promoteHot(sc *siteCache) {
	var ids []media.VideoID
	for id, e := range sc.entries {
		if e.life >= m.cfg.PromoteHits && !e.rep.Full() {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		e := sc.entries[id]
		full := e.rep.Variant.SizeBytes(e.video)
		if sc.used-e.bytes+full <= m.cfg.ByteBudget {
			m.upgrade(sc, id, e, full)
		} else if m.promote != nil {
			if tier, ok := ladderTier(e.video, e.rep.Variant.Quality); ok {
				m.promote(id, tier, e.life)
				e.life = 0 // window restarts; don't re-feed every tick
			}
		}
	}
}

// upgrade swaps the prefix for a full replica at the same edge site in a
// single directory transition (one epoch bump).
func (m *Manager) upgrade(sc *siteCache, id media.VideoID, e *entry, full int64) {
	blob, err := sc.blobs.Create(full-e.bytes, e.video.Seed^uint64(e.rep.Blob)<<8)
	if err != nil {
		return
	}
	// Model the tail fill as growing the resident footprint; the metadata
	// swap is what the planner sees.
	sc.store.Remove(e.rep)
	fullRep := &metadata.Replica{
		Video:   id,
		Site:    sc.name,
		Variant: e.rep.Variant,
		Blob:    blob.ID,
		Profile: e.rep.Profile,
	}
	if err := sc.store.Add(fullRep); err != nil {
		sc.store.Add(e.rep) //nolint:errcheck // restore the prefix we just removed
		sc.blobs.Delete(blob.ID)
		return
	}
	sc.blobs.Delete(e.rep.Blob) //nolint:errcheck // replaced by the full blob
	sc.used += full - e.bytes
	e.rep = fullRep
	e.bytes = full
	sc.promotions.Inc()
	sc.bytesGauge.Set(sc.used)
	m.dir.Invalidate(id)
}

// decay halves every popularity counter so the cache follows the current
// workload; zeroed want entries are forgotten.
func (m *Manager) decay(sc *siteCache) {
	for id, n := range sc.want {
		if n /= 2; n == 0 {
			delete(sc.want, id)
		} else {
			sc.want[id] = n
		}
	}
	for _, e := range sc.entries {
		e.hot /= 2
	}
}

// Stats summarizes the tier.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{Sites: len(m.sites)}
	for _, sc := range m.sites {
		for _, e := range sc.entries {
			if e.rep.Full() {
				s.FullReplicas++
			} else {
				s.Prefixes++
			}
		}
		s.BytesUsed += sc.used
		s.Hits += sc.hits.Value()
		s.Misses += sc.misses.Value()
		s.Installs += sc.installs.Value()
		s.Evictions += sc.evictions.Value()
		s.NeighborFills += sc.neighborFills.Value()
		s.OriginFills += sc.originFills.Value()
		s.Promotions += sc.promotions.Value()
	}
	return s
}

// Sites returns the edge site names, sorted.
func (m *Manager) Sites() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, len(m.sites))
	for i, sc := range m.sites {
		out[i] = sc.name
	}
	return out
}

// ladderTier maps a variant quality back onto the replication ladder.
func ladderTier(v *media.Video, q qos.AppQoS) (media.LinkClass, bool) {
	for _, c := range []media.LinkClass{media.LinkLAN, media.LinkT1, media.LinkDSL, media.LinkModem} {
		if media.LadderQuality(c, v.FrameRate) == q {
			return c, true
		}
	}
	return 0, false
}

// prefixBytes sums the coded size of the video's first n GOPs at the
// variant's quality.
func prefixBytes(v *media.Video, va media.Variant, n int) int64 {
	var total int64
	gop := v.GOP.Len()
	frames := v.Frames()
	for g := 0; g < n && g*gop < frames; g++ {
		total += va.GOPSize(v, g*gop)
	}
	return total
}
