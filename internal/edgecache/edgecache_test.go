package edgecache

import (
	"sync"
	"testing"

	"quasaq/internal/media"
	"quasaq/internal/metadata"
	"quasaq/internal/obs"
	"quasaq/internal/replication"
	"quasaq/internal/simtime"
	"quasaq/internal/storage"
)

// testWorld builds a directory with one origin site holding a full
// high-bitrate replica of every corpus video, plus two empty edge sites
// registered with the cache manager.
func testWorld(t *testing.T, cfg Config) (*metadata.Directory, *Manager, []*media.Video) {
	t.Helper()
	sim := simtime.NewSimulator()
	dir := metadata.NewDirectory()
	videos := media.StandardCorpus(42)
	origin := metadata.NewStore("origin")
	if err := dir.AddStore(origin); err != nil {
		t.Fatal(err)
	}
	blobs := storage.NewBlobStore(0)
	for _, v := range videos {
		va := media.NewVariant(media.LadderQuality(media.LinkLAN, v.FrameRate))
		blob, err := blobs.Create(va.SizeBytes(v), v.Seed)
		if err != nil {
			t.Fatal(err)
		}
		if err := origin.Add(&metadata.Replica{
			Video: v.ID, Site: "origin", Variant: va, Blob: blob.ID,
			Profile: replication.SampleProfile(v, va),
		}); err != nil {
			t.Fatal(err)
		}
	}
	m := New(sim, dir, videos, obs.NewRegistry(), cfg)
	for _, name := range []string{"edge-a", "edge-b"} {
		st := metadata.NewStore(name)
		if err := dir.AddStore(st); err != nil {
			t.Fatal(err)
		}
		dir.SetTier(name, metadata.TierEdge)
		m.AddSite(name, storage.NewBlobStore(0), st)
	}
	m.MapClient("client-a", "edge-a")
	m.MapClient("client-b", "edge-b")
	return dir, m, videos
}

// onePrefixBytes returns the byte size of video v's prefix at the cache's
// configured GOP count, copied from the origin's full replica variant.
func onePrefixBytes(t *testing.T, m *Manager, dir *metadata.Directory, v *media.Video) int64 {
	t.Helper()
	rep, ok := m.sourceReplica("edge-a", v.ID)
	if !ok {
		t.Fatalf("no full replica for %s", v.ID)
	}
	return prefixBytes(v, rep.Variant, m.cfg.PrefixGOPs)
}

// TestInstallBumpsEpochOnce pins the plan-cache invalidation contract: one
// prefix install is exactly one topology-epoch bump, and a tick that
// installs nothing bumps nothing.
func TestInstallBumpsEpochOnce(t *testing.T) {
	dir, m, videos := testWorld(t, Config{MinHits: 1, PrefixGOPs: 2})
	before := dir.Epoch()
	m.Tick() // nothing observed yet
	if got := dir.Epoch(); got != before {
		t.Fatalf("idle tick bumped epoch: %d -> %d", before, got)
	}
	m.Observe("client-a", videos[0].ID)
	before = dir.Epoch()
	m.Tick()
	if got := dir.Epoch(); got != before+1 {
		t.Fatalf("one install bumped epoch by %d, want 1", got-before)
	}
	if !m.Holds("edge-a", videos[0].ID) {
		t.Fatal("prefix not resident after install")
	}
	if s := m.Stats(); s.Installs != 1 || s.Prefixes != 1 {
		t.Fatalf("stats after install: %+v", s)
	}
	// A tick with nothing new leaves the epoch alone again.
	before = dir.Epoch()
	m.Tick()
	if got := dir.Epoch(); got != before {
		t.Fatalf("steady-state tick bumped epoch: %d -> %d", before, got)
	}
}

// TestEvictionBumpsEpochOncePerTransition forces budget pressure so a hotter
// video displaces a colder resident: the tick performs exactly one eviction
// and one install — two epoch bumps, one per replica transition.
func TestEvictionBumpsEpochOncePerTransition(t *testing.T) {
	probeDir, probe, videos := testWorld(t, Config{MinHits: 1, PrefixGOPs: 2})
	// Budget sized to the corpus's largest prefix: with that video resident,
	// any other prefix fits the budget but not alongside it — guaranteeing
	// displacement rather than admission refusal.
	big, bigBytes := videos[0], int64(0)
	for _, v := range videos {
		if b := onePrefixBytes(t, probe, probeDir, v); b > bigBytes {
			big, bigBytes = v, b
		}
	}
	var small *media.Video
	for _, v := range videos {
		if v != big {
			small = v
			break
		}
	}
	dir, m, _ := testWorld(t, Config{MinHits: 1, PrefixGOPs: 2, ByteBudget: bigBytes})

	m.Observe("client-a", big.ID)
	m.Tick()
	if !m.Holds("edge-a", big.ID) {
		t.Fatal("first prefix not installed")
	}
	// The resident's hot count decays to zero across ticks; a strictly
	// hotter candidate then claims the space.
	m.Tick()
	m.Observe("client-a", small.ID)
	m.Observe("client-a", small.ID)
	before := dir.Epoch()
	m.Tick()
	if got := dir.Epoch(); got != before+2 {
		t.Fatalf("evict+install bumped epoch by %d, want 2", got-before)
	}
	if m.Holds("edge-a", big.ID) {
		t.Fatal("evicted prefix still resident")
	}
	if !m.Holds("edge-a", small.ID) {
		t.Fatal("hotter prefix not installed")
	}
	st, err := dir.Store("edge-a")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(st.Local(big.ID)); got != 0 {
		t.Fatalf("evicted video still has %d replicas in the edge store", got)
	}
	if s := m.Stats(); s.Evictions != 1 || s.Installs != 2 || s.Prefixes != 1 {
		t.Fatalf("stats after churn: %+v", s)
	}
}

// TestBudgetNeverExceededUnderChurn drives a rotating popularity pattern
// through a cache that fits only a couple of prefixes and checks the
// invariants after every tick: per-site bytes within budget, blob-store
// usage in lockstep with the accounting, and residency (Holds, the
// neighbor-lookup primitive) always matching the metadata store.
func TestBudgetNeverExceededUnderChurn(t *testing.T) {
	probeDir, probe, videos := testWorld(t, Config{MinHits: 1, PrefixGOPs: 2})
	budget := 2 * onePrefixBytes(t, probe, probeDir, videos[0])
	_, m, videos := testWorld(t, Config{MinHits: 1, PrefixGOPs: 2, ByteBudget: budget})

	clients := []string{"client-a", "client-b"}
	for round := 0; round < 60; round++ {
		// Rotate which videos are hot so installs and evictions keep
		// happening; the mix differs per home edge.
		for burst := 0; burst < 3; burst++ {
			v := videos[(round*5+burst*3)%len(videos)]
			m.Observe(clients[round%2], v.ID)
			m.Observe(clients[round%2], v.ID)
		}
		m.Tick()
		for _, sc := range m.sites {
			if sc.used > m.cfg.ByteBudget {
				t.Fatalf("round %d: site %s uses %d bytes over budget %d",
					round, sc.name, sc.used, m.cfg.ByteBudget)
			}
			if got := sc.blobs.Used(); got != sc.used {
				t.Fatalf("round %d: site %s accounting %d != blob store %d",
					round, sc.name, sc.used, got)
			}
			if int(sc.blobs.Count()) != len(sc.entries) {
				t.Fatalf("round %d: site %s has %d blobs for %d entries",
					round, sc.name, sc.blobs.Count(), len(sc.entries))
			}
			for _, v := range videos {
				_, resident := sc.entries[v.ID]
				if resident != (len(sc.store.Local(v.ID)) > 0) {
					t.Fatalf("round %d: site %s residency for %s disagrees with metadata store",
						round, sc.name, v.ID)
				}
				if resident != m.Holds(sc.name, v.ID) {
					t.Fatalf("round %d: Holds(%s, %s) disagrees with entries",
						round, sc.name, v.ID)
				}
			}
		}
	}
	if s := m.Stats(); s.Evictions == 0 {
		t.Fatalf("churn workload produced no evictions: %+v", s)
	}
}

// TestConcurrentObserveTickHolds exercises the public surface from many
// goroutines at once; run under -race (the race-edge gate) this pins the
// lock discipline.
func TestConcurrentObserveTickHolds(t *testing.T) {
	_, m, videos := testWorld(t, Config{MinHits: 1, PrefixGOPs: 2})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := []string{"client-a", "client-b"}[g%2]
			for i := 0; i < 200; i++ {
				v := videos[(g*31+i)%len(videos)]
				m.Observe(client, v.ID)
				m.Holds("edge-a", v.ID)
				if i%16 == 0 {
					m.Stats()
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			m.Tick()
		}
	}()
	wg.Wait()
	// Goroutine scheduling may drain the tick loop before the observers
	// accrue demand; one more tick settles the admissions deterministically.
	m.Tick()
	if s := m.Stats(); s.Installs == 0 {
		t.Fatalf("concurrent workload installed nothing: %+v", s)
	}
}

// TestPromotionInPlace: a prefix whose cumulative popularity crosses
// PromoteHits is upgraded to a full edge replica when the budget allows —
// one epoch bump for the swap, and the planner sees a full copy.
func TestPromotionInPlace(t *testing.T) {
	dir, m, videos := testWorld(t, Config{MinHits: 1, PrefixGOPs: 2, PromoteHits: 3})
	m.Observe("client-a", videos[0].ID)
	m.Tick() // install, life=1
	m.Observe("client-a", videos[0].ID)
	m.Observe("client-a", videos[0].ID)
	before := dir.Epoch()
	m.Tick() // life=3 crosses the threshold
	if got := dir.Epoch(); got != before+1 {
		t.Fatalf("in-place promotion bumped epoch by %d, want 1", got-before)
	}
	s := m.Stats()
	if s.Promotions != 1 || s.FullReplicas != 1 || s.Prefixes != 0 {
		t.Fatalf("stats after promotion: %+v", s)
	}
	st, err := dir.Store("edge-a")
	if err != nil {
		t.Fatal(err)
	}
	reps := st.Local(videos[0].ID)
	if len(reps) != 1 || !reps[0].Full() {
		t.Fatalf("edge store after promotion holds %v", reps)
	}
}

// TestPromotionOverflowFeedsReplicator: when the full copy does not fit the
// edge budget, the sustained demand is handed to the promote sink instead —
// the bridge into replication.Dynamic.
func TestPromotionOverflowFeedsReplicator(t *testing.T) {
	probeDir, probe, videos := testWorld(t, Config{MinHits: 1, PrefixGOPs: 2})
	one := onePrefixBytes(t, probe, probeDir, videos[0])
	_, m, videos := testWorld(t, Config{MinHits: 1, PrefixGOPs: 2, PromoteHits: 2, ByteBudget: one})

	var promoted []media.VideoID
	m.SetPromote(func(id media.VideoID, _ media.LinkClass, n int) {
		if n <= 0 {
			t.Fatalf("promote with non-positive demand %d", n)
		}
		promoted = append(promoted, id)
	})
	m.Observe("client-a", videos[0].ID)
	m.Tick()
	m.Observe("client-a", videos[0].ID)
	m.Observe("client-a", videos[0].ID)
	m.Tick()
	if len(promoted) != 1 || promoted[0] != videos[0].ID {
		t.Fatalf("promote sink saw %v, want [%s]", promoted, videos[0].ID)
	}
	// The prefix stays resident (still serving startups) and is not
	// re-promoted every tick: life was reset.
	if !m.Holds("edge-a", videos[0].ID) {
		t.Fatal("prefix dropped on overflow promotion")
	}
	m.Tick()
	if len(promoted) != 1 {
		t.Fatalf("promotion re-fed every tick: %v", promoted)
	}
}
