package cpusched

import (
	"errors"
	"testing"
	"time"

	"quasaq/internal/simtime"
)

func newCPU() (*simtime.Simulator, *CPU) {
	sim := simtime.NewSimulator()
	return sim, New(sim, DefaultQuantum)
}

func TestSingleTaskRunsImmediately(t *testing.T) {
	sim, cpu := newCPU()
	j := cpu.NewBestEffortJob("j")
	var done simtime.Time
	j.Submit(3*time.Millisecond, func(at simtime.Time) { done = at })
	sim.Run()
	if done != 3*time.Millisecond {
		t.Fatalf("completion = %v, want 3ms", done)
	}
	if cpu.BusyTime() != 3*time.Millisecond {
		t.Fatalf("busy = %v", cpu.BusyTime())
	}
}

func TestBestEffortFIFOWithinJob(t *testing.T) {
	sim, cpu := newCPU()
	j := cpu.NewBestEffortJob("j")
	var order []int
	j.Submit(time.Millisecond, func(simtime.Time) { order = append(order, 1) })
	j.Submit(time.Millisecond, func(simtime.Time) { order = append(order, 2) })
	sim.Run()
	if len(order) != 2 || order[0] != 1 {
		t.Fatalf("order = %v", order)
	}
}

func TestRoundRobinAlternatesJobs(t *testing.T) {
	// Two CPU-bound jobs with 25 ms tasks: with a 10 ms quantum each task
	// needs three turns, so completions interleave rather than run
	// back-to-back.
	sim, cpu := newCPU()
	a := cpu.NewBestEffortJob("a")
	b := cpu.NewBestEffortJob("b")
	var tA, tB simtime.Time
	a.Submit(25*time.Millisecond, func(at simtime.Time) { tA = at })
	b.Submit(25*time.Millisecond, func(at simtime.Time) { tB = at })
	sim.Run()
	// a runs [0,10) [20,30) [40,45); b runs [10,20) [30,40) [45,50).
	if tA != 45*time.Millisecond {
		t.Fatalf("a completed at %v, want 45ms", tA)
	}
	if tB != 50*time.Millisecond {
		t.Fatalf("b completed at %v, want 50ms", tB)
	}
}

func TestQuantumBurstsThroughBacklog(t *testing.T) {
	// The Figure 5c mechanism: a backlogged job, once dispatched, processes
	// all overdue frames inside one quantum, yielding near-zero
	// inter-completion gaps within the burst.
	sim, cpu := newCPU()
	hog := cpu.NewBestEffortJob("hog")
	victim := cpu.NewBestEffortJob("victim")
	hog.Submit(10*time.Millisecond, nil)
	var completions []simtime.Time
	for i := 0; i < 4; i++ {
		victim.Submit(time.Millisecond, func(at simtime.Time) { completions = append(completions, at) })
	}
	sim.Run()
	if len(completions) != 4 {
		t.Fatalf("completions = %d", len(completions))
	}
	if completions[0] != 11*time.Millisecond {
		t.Fatalf("first completion %v, want 11ms (after hog's quantum)", completions[0])
	}
	for i := 1; i < 4; i++ {
		if gap := completions[i] - completions[i-1]; gap != time.Millisecond {
			t.Fatalf("burst gap %d = %v, want 1ms", i, gap)
		}
	}
}

func TestReservationAdmissionControl(t *testing.T) {
	_, cpu := newCPU()
	period := 40 * time.Millisecond
	// 0.5 + 0.3 admitted; +0.2 would exceed the 0.85 bound.
	if _, err := cpu.NewReservedJob("a", period, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := cpu.NewReservedJob("b", period, 12*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := cpu.NewReservedJob("c", period, 8*time.Millisecond); !errors.Is(err, ErrAdmission) {
		t.Fatalf("err = %v, want admission rejection", err)
	}
	if u := cpu.ReservedUtilization(); u < 0.79 || u > 0.81 {
		t.Fatalf("utilization = %v, want 0.8", u)
	}
}

func TestReservationInvalidParams(t *testing.T) {
	_, cpu := newCPU()
	if _, err := cpu.NewReservedJob("x", 0, time.Millisecond); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := cpu.NewReservedJob("x", time.Millisecond, 2*time.Millisecond); err == nil {
		t.Fatal("slice > period accepted")
	}
}

func TestFinishReleasesUtilization(t *testing.T) {
	_, cpu := newCPU()
	j, err := cpu.NewReservedJob("a", 40*time.Millisecond, 32*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	j.Finish()
	j.Finish() // idempotent
	if cpu.ReservedUtilization() != 0 {
		t.Fatalf("utilization after finish = %v", cpu.ReservedUtilization())
	}
	if _, err := cpu.NewReservedJob("b", 40*time.Millisecond, 32*time.Millisecond); err != nil {
		t.Fatalf("capacity not reclaimed: %v", err)
	}
}

func TestReservedPreemptsBestEffort(t *testing.T) {
	// A best-effort hog is mid-quantum when a reserved frame arrives; the
	// reserved task must start immediately — the DSRT guarantee.
	sim, cpu := newCPU()
	hog := cpu.NewBestEffortJob("hog")
	res, err := cpu.NewReservedJob("stream", 42*time.Millisecond, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	hog.Submit(30*time.Millisecond, nil)
	var resDone, hogDone simtime.Time
	sim.Schedule(2*time.Millisecond, func() {
		res.Submit(3*time.Millisecond, func(at simtime.Time) { resDone = at })
	})
	// Track hog completion via a second task (first has nil callback).
	hog.Submit(time.Millisecond, func(at simtime.Time) { hogDone = at })
	sim.Run()
	if resDone != 5*time.Millisecond {
		t.Fatalf("reserved completed at %v, want 5ms (2ms release + 3ms service)", resDone)
	}
	if hogDone == 0 || hogDone < resDone {
		t.Fatalf("hog order broken: %v", hogDone)
	}
}

func TestReservedJobJitterUnderContention(t *testing.T) {
	// The Figure 5d property: a reserved periodic stream keeps near-ideal
	// completion pacing despite many best-effort competitors.
	sim, cpu := newCPU()
	period := 40 * time.Millisecond
	stream, err := cpu.NewReservedJob("stream", period, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		hog := cpu.NewBestEffortJob("hog")
		var spin func(simtime.Time)
		spin = func(simtime.Time) { hog.Submit(8*time.Millisecond, spin) }
		hog.Submit(8*time.Millisecond, spin)
	}
	var completions []simtime.Time
	for i := 0; i < 50; i++ {
		release := simtime.Time(i) * period
		sim.ScheduleAt(release, func() {
			stream.Submit(2*time.Millisecond, func(at simtime.Time) {
				completions = append(completions, at)
			})
		})
	}
	sim.RunUntil(3 * time.Second)
	if len(completions) != 50 {
		t.Fatalf("only %d/50 frames completed", len(completions))
	}
	for i := 1; i < len(completions); i++ {
		gap := completions[i] - completions[i-1]
		if gap < 30*time.Millisecond || gap > 50*time.Millisecond {
			t.Fatalf("reserved inter-completion gap %d = %v, want ~40ms", i, gap)
		}
	}
}

func TestBestEffortJobStarvesUnderContention(t *testing.T) {
	// The Figure 5c property: the same periodic stream WITHOUT a
	// reservation suffers large completion gaps under contention.
	sim, cpu := newCPU()
	period := 40 * time.Millisecond
	stream := cpu.NewBestEffortJob("stream")
	for i := 0; i < 10; i++ {
		hog := cpu.NewBestEffortJob("hog")
		var spin func(simtime.Time)
		spin = func(simtime.Time) { hog.Submit(8*time.Millisecond, spin) }
		hog.Submit(8*time.Millisecond, spin)
	}
	var completions []simtime.Time
	for i := 0; i < 50; i++ {
		release := simtime.Time(i) * period
		sim.ScheduleAt(release, func() {
			stream.Submit(2*time.Millisecond, func(at simtime.Time) {
				completions = append(completions, at)
			})
		})
	}
	sim.RunUntil(5 * time.Second)
	if len(completions) < 40 {
		t.Fatalf("only %d frames completed", len(completions))
	}
	var worst simtime.Time
	for i := 1; i < len(completions); i++ {
		if gap := completions[i] - completions[i-1]; gap > worst {
			worst = gap
		}
	}
	if worst < 60*time.Millisecond {
		t.Fatalf("worst best-effort gap = %v; expected starvation spikes >60ms", worst)
	}
}

func TestEDFOrderAmongReserved(t *testing.T) {
	sim, cpu := newCPU()
	// A running reserved task is non-preemptible, so both later reserved
	// tasks queue up and are dispatched in EDF order when it completes.
	blocker, _ := cpu.NewReservedJob("blocker", 100*time.Millisecond, 10*time.Millisecond)
	blocker.Submit(5*time.Millisecond, nil)
	longP, _ := cpu.NewReservedJob("long", 100*time.Millisecond, 10*time.Millisecond)
	shortP, _ := cpu.NewReservedJob("short", 20*time.Millisecond, 2*time.Millisecond)
	var order []string
	sim.Schedule(time.Millisecond, func() {
		longP.Submit(time.Millisecond, func(simtime.Time) { order = append(order, "long") })
	})
	sim.Schedule(2*time.Millisecond, func() {
		shortP.Submit(time.Millisecond, func(simtime.Time) { order = append(order, "short") })
	})
	sim.Run()
	// short's deadline (2+20=22ms) precedes long's (1+100=101ms).
	if len(order) != 2 || order[0] != "short" {
		t.Fatalf("EDF order = %v, want short first", order)
	}
}

func TestFinishDropsPendingTasks(t *testing.T) {
	sim, cpu := newCPU()
	j := cpu.NewBestEffortJob("j")
	fired := false
	j.Submit(time.Hour, func(simtime.Time) { fired = true })
	sim.Schedule(time.Millisecond, j.Finish)
	sim.Run()
	if fired {
		t.Fatal("task callback fired after Finish")
	}
	// CPU must be usable afterwards.
	k := cpu.NewBestEffortJob("k")
	var done simtime.Time
	k.Submit(time.Millisecond, func(at simtime.Time) { done = at })
	sim.Run()
	if done == 0 {
		t.Fatal("CPU stuck after Finish of running job")
	}
}

func TestSubmitAfterFinishIgnored(t *testing.T) {
	sim, cpu := newCPU()
	j := cpu.NewBestEffortJob("j")
	j.Finish()
	fired := false
	j.Submit(time.Millisecond, func(simtime.Time) { fired = true })
	sim.Run()
	if fired {
		t.Fatal("submit after finish executed")
	}
}

func TestDispatchOverheadAccounting(t *testing.T) {
	sim, cpu := newCPU()
	cpu.DispatchOverhead = 160 * time.Microsecond // the paper's 0.16 ms
	j := cpu.NewBestEffortJob("j")
	var done simtime.Time
	j.Submit(5*time.Millisecond, func(at simtime.Time) { done = at })
	sim.Run()
	if done != 5*time.Millisecond+160*time.Microsecond {
		t.Fatalf("completion = %v, want service+overhead", done)
	}
	if cpu.Dispatches() != 1 {
		t.Fatalf("dispatches = %d", cpu.Dispatches())
	}
}

func TestZeroServiceTask(t *testing.T) {
	sim, cpu := newCPU()
	j := cpu.NewBestEffortJob("j")
	var done bool
	j.Submit(0, func(simtime.Time) { done = true })
	sim.Run()
	if !done {
		t.Fatal("zero-service task never completed")
	}
}

func TestNegativeServicePanics(t *testing.T) {
	_, cpu := newCPU()
	j := cpu.NewBestEffortJob("j")
	defer func() {
		if recover() == nil {
			t.Fatal("negative service accepted")
		}
	}()
	j.Submit(-time.Millisecond, nil)
}

func TestBusyTimeConservation(t *testing.T) {
	sim, cpu := newCPU()
	a := cpu.NewBestEffortJob("a")
	b := cpu.NewBestEffortJob("b")
	total := 0 * time.Millisecond
	for i := 0; i < 5; i++ {
		a.Submit(7*time.Millisecond, nil)
		b.Submit(3*time.Millisecond, nil)
		total += 10 * time.Millisecond
	}
	sim.Run()
	if cpu.BusyTime() != total {
		t.Fatalf("busy = %v, want %v", cpu.BusyTime(), total)
	}
}
