// Package cpusched models the two CPU schedulers whose contrast drives the
// paper's Figure 5 and Table 2:
//
//   - a time-sharing round-robin scheduler with a 10 ms quantum, standing in
//     for the stock Solaris 2.6 scheduler under which the original VDBMS
//     streamed ("the job waits for its turn of CPU utilization ... it will
//     try to process all the frames that are overdue within the quantum
//     assigned by the OS (10ms in Solaris)", §5.1); and
//   - a DSRT-style soft-real-time reservation scheduler (period + slice
//     admission, earliest-deadline-first dispatch, preemption of best-effort
//     work), standing in for the QualMan CPU scheduler behind QuaSAQ's
//     composite QoS API.
//
// Both run on the same simulated CPU. Streaming jobs submit one task per
// frame; the scheduler decides completion times, and the transport layer
// derives inter-frame delays from them.
package cpusched

import (
	"errors"
	"fmt"
	"time"

	"quasaq/internal/obs"
	"quasaq/internal/simtime"
)

// DefaultQuantum is the Solaris time-sharing quantum the paper cites.
const DefaultQuantum = 10 * time.Millisecond

// DefaultMaxUtilization bounds admitted reserved utilization, leaving
// headroom for best-effort work and scheduler overhead, as DSRT does.
const DefaultMaxUtilization = 0.85

// ErrAdmission reports that a reservation would exceed the utilization
// bound.
var ErrAdmission = errors.New("cpusched: reservation rejected by admission control")

// Task is one unit of CPU work (processing one video frame, one transcode
// step, one query). Done is invoked exactly once, at completion time.
type Task struct {
	job       *Job
	remaining simtime.Time
	released  simtime.Time
	deadline  simtime.Time // released + period for reserved jobs
	done      func(completed simtime.Time)
}

// Job is a stream of tasks belonging to one session or process.
type Job struct {
	cpu      *CPU
	name     string
	reserved bool
	period   simtime.Time
	slice    simtime.Time
	tasks    []*Task // released, not yet completed; head is next to run
	queued   bool    // present in the best-effort run queue
	finished bool
}

// Name returns the job's diagnostic name.
func (j *Job) Name() string { return j.name }

// Reserved reports whether the job holds a CPU reservation.
func (j *Job) Reserved() bool { return j.reserved }

// Backlog returns the number of released, uncompleted tasks.
func (j *Job) Backlog() int { return len(j.tasks) }

// CPU is a single simulated processor shared by reserved and best-effort
// jobs.
type CPU struct {
	sim     *simtime.Simulator
	quantum simtime.Time
	maxUtil float64

	// DispatchOverhead is charged once per dispatch decision, modelling
	// scheduler bookkeeping (DSRT reports 0.4-0.8 ms per 10 ms on its
	// hardware, 0.16 ms on the paper's machines).
	DispatchOverhead simtime.Time

	reservedJobs []*Job // jobs holding reservations (admission accounting)
	readyRes     []*Job // reserved jobs with released tasks
	readyBE      []*Job // best-effort round-robin queue

	cur *running

	util       float64
	dispatches uint64
	busy       simtime.Time
	lastStart  simtime.Time

	// Registry handles, nil (no-op) until Instrument is called.
	mDispatches *obs.Counter
	mPreempts   *obs.Counter
	mRejects    *obs.Counter
	mUtil       *obs.FloatGauge
}

// Instrument wires the scheduler's accounting onto the metrics registry
// under the given label pairs (conventionally "site", name).
func (c *CPU) Instrument(reg *obs.Registry, labels ...string) {
	c.mDispatches = reg.Counter("cpusched_dispatches_total", labels...)
	c.mPreempts = reg.Counter("cpusched_preemptions_total", labels...)
	c.mRejects = reg.Counter("cpusched_admission_rejects_total", labels...)
	c.mUtil = reg.FloatGauge("cpusched_reserved_utilization", labels...)
}

type running struct {
	job        *Job
	task       *Task
	started    simtime.Time
	quantumEnd simtime.Time // zero for reserved dispatches
	doneEv     *simtime.Event
	expiryEv   *simtime.Event
}

// New creates a CPU on the simulator with the given scheduling quantum.
func New(sim *simtime.Simulator, quantum simtime.Time) *CPU {
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	return &CPU{sim: sim, quantum: quantum, maxUtil: DefaultMaxUtilization}
}

// SetMaxUtilization overrides the reserved-utilization admission bound.
func (c *CPU) SetMaxUtilization(u float64) { c.maxUtil = u }

// ReservedUtilization returns the admitted reserved utilization in [0,1].
func (c *CPU) ReservedUtilization() float64 { return c.util }

// Dispatches returns the number of dispatch decisions taken, for overhead
// accounting.
func (c *CPU) Dispatches() uint64 { return c.dispatches }

// BusyTime returns cumulative time the CPU spent executing tasks.
func (c *CPU) BusyTime() simtime.Time {
	b := c.busy
	if c.cur != nil {
		b += c.sim.Now() - c.cur.started
	}
	return b
}

// NewBestEffortJob creates a time-shared job.
func (c *CPU) NewBestEffortJob(name string) *Job {
	return &Job{cpu: c, name: name}
}

// NewReservedJob creates a job with a (period, slice) CPU reservation,
// subject to admission control: total reserved utilization must stay within
// the bound. This is the CPU leg of the composite QoS API's reservation.
func (c *CPU) NewReservedJob(name string, period, slice simtime.Time) (*Job, error) {
	if period <= 0 || slice <= 0 || slice > period {
		return nil, fmt.Errorf("cpusched: invalid reservation period=%v slice=%v", period, slice)
	}
	u := float64(slice) / float64(period)
	if c.util+u > c.maxUtil+1e-12 {
		c.mRejects.Inc()
		return nil, fmt.Errorf("%w: %.2f+%.2f > %.2f", ErrAdmission, c.util, u, c.maxUtil)
	}
	j := &Job{cpu: c, name: name, reserved: true, period: period, slice: slice}
	c.util += u
	c.mUtil.Set(c.util)
	c.reservedJobs = append(c.reservedJobs, j)
	return j, nil
}

// Finish releases the job's reservation (if any) and drops pending tasks.
// Their done callbacks never fire.
func (j *Job) Finish() {
	if j.finished {
		return
	}
	j.finished = true
	c := j.cpu
	if j.reserved {
		c.util -= float64(j.slice) / float64(j.period)
		if c.util < 0 {
			c.util = 0
		}
		c.mUtil.Set(c.util)
		c.reservedJobs = removeJob(c.reservedJobs, j)
		c.readyRes = removeJob(c.readyRes, j)
	} else {
		c.readyBE = removeJob(c.readyBE, j)
		j.queued = false
	}
	j.tasks = nil
	if c.cur != nil && c.cur.job == j {
		c.stopCurrent(false)
		c.dispatch()
	}
}

func removeJob(s []*Job, j *Job) []*Job {
	for i, x := range s {
		if x == j {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// Submit releases a task needing the given CPU service time; done is called
// at its completion instant. Zero-service tasks complete after the dispatch
// overhead alone.
func (j *Job) Submit(service simtime.Time, done func(simtime.Time)) {
	if j.finished {
		return
	}
	if service < 0 {
		panic("cpusched: negative service time")
	}
	c := j.cpu
	t := &Task{job: j, remaining: service, released: c.sim.Now(), done: done}
	if j.reserved {
		t.deadline = t.released + j.period
	}
	j.tasks = append(j.tasks, t)
	if j.reserved {
		if !containsJob(c.readyRes, j) {
			c.readyRes = append(c.readyRes, j)
		}
	} else if !j.queued && !(c.cur != nil && c.cur.job == j) {
		// A job that is currently on the CPU keeps its new task in its own
		// queue; enqueuing it again would double-schedule it.
		j.queued = true
		c.readyBE = append(c.readyBE, j)
	}
	c.maybePreempt()
	c.dispatch()
}

func containsJob(s []*Job, j *Job) bool {
	for _, x := range s {
		if x == j {
			return true
		}
	}
	return false
}

// maybePreempt interrupts a best-effort dispatch when reserved work becomes
// ready: the soft-real-time guarantee DSRT provides.
func (c *CPU) maybePreempt() {
	if c.cur == nil || c.cur.job.reserved || len(c.readyRes) == 0 {
		return
	}
	c.mPreempts.Inc()
	c.stopCurrent(true)
}

// stopCurrent halts the running dispatch. If requeue is set, the partially
// executed task keeps its consumed service and its job returns to the front
// of the best-effort queue.
func (c *CPU) stopCurrent(requeue bool) {
	r := c.cur
	if r == nil {
		return
	}
	consumed := c.sim.Now() - r.started
	c.busy += consumed
	progress := consumed - c.DispatchOverhead
	if progress < 0 {
		progress = 0
	}
	r.task.remaining -= progress
	if r.task.remaining < 0 {
		r.task.remaining = 0
	}
	c.sim.Cancel(r.doneEv)
	c.sim.Cancel(r.expiryEv)
	c.cur = nil
	if requeue && !r.job.finished {
		if !r.job.queued {
			r.job.queued = true
			c.readyBE = append([]*Job{r.job}, c.readyBE...)
		}
	}
}

// dispatch starts the next task if the CPU is idle.
func (c *CPU) dispatch() {
	if c.cur != nil {
		return
	}
	if j := c.pickEDF(); j != nil {
		c.start(j, 0)
		return
	}
	for len(c.readyBE) > 0 {
		j := c.readyBE[0]
		c.readyBE = c.readyBE[1:]
		j.queued = false
		if len(j.tasks) == 0 {
			continue // drained while queued (e.g. by Finish)
		}
		c.start(j, c.sim.Now()+c.quantum)
		return
	}
}

// pickEDF returns the reserved job whose head task has the earliest
// deadline, or nil.
func (c *CPU) pickEDF() *Job {
	var best *Job
	for _, j := range c.readyRes {
		if len(j.tasks) == 0 {
			continue
		}
		if best == nil || j.tasks[0].deadline < best.tasks[0].deadline {
			best = j
		}
	}
	return best
}

func (c *CPU) start(j *Job, quantumEnd simtime.Time) {
	t := j.tasks[0]
	c.dispatches++
	c.mDispatches.Inc()
	r := &running{job: j, task: t, started: c.sim.Now(), quantumEnd: quantumEnd}
	c.cur = r
	runFor := t.remaining + c.DispatchOverhead
	if quantumEnd > 0 && c.sim.Now()+runFor > quantumEnd {
		// The quantum expires mid-task: schedule expiry, not completion.
		r.expiryEv = c.sim.ScheduleAt(quantumEnd, func() { c.onExpiry(r) })
		return
	}
	r.doneEv = c.sim.Schedule(runFor, func() { c.onComplete(r) })
}

func (c *CPU) onComplete(r *running) {
	if c.cur != r {
		return // stale event (defensive; cancellation should prevent this)
	}
	now := c.sim.Now()
	c.busy += now - r.started
	j := r.job
	j.tasks = j.tasks[1:]
	c.cur = nil
	if j.reserved && len(j.tasks) == 0 {
		c.readyRes = removeJob(c.readyRes, j)
	}
	// Within a live quantum a best-effort job keeps the CPU and burns
	// through its backlog — the paper's "process all the frames that are
	// overdue within the quantum".
	if !j.reserved && !j.finished && len(j.tasks) > 0 && now < r.quantumEnd && c.pickEDF() == nil {
		c.start(j, r.quantumEnd)
	} else if !j.reserved && !j.finished && len(j.tasks) > 0 {
		if !j.queued {
			j.queued = true
			c.readyBE = append(c.readyBE, j)
		}
	}
	if r.task.done != nil {
		r.task.done(now)
	}
	c.dispatch()
}

func (c *CPU) onExpiry(r *running) {
	if c.cur != r {
		return
	}
	now := c.sim.Now()
	consumed := now - r.started
	c.busy += consumed
	progress := consumed - c.DispatchOverhead
	if progress < 0 {
		progress = 0
	}
	r.task.remaining -= progress
	if r.task.remaining < 0 {
		r.task.remaining = 0
	}
	j := r.job
	c.cur = nil
	if !j.finished {
		// Rotate to the tail: classic round-robin.
		if !j.queued {
			j.queued = true
			c.readyBE = append(c.readyBE, j)
		}
	}
	c.dispatch()
}
