// Package cryptoact implements the encryption server activity (set A5 in
// the paper's Figure 2). Plans may require the stream to be encrypted when
// the query demands a security level (Table 1 lists Security among the
// application QoS parameters); each algorithm trades CPU for strength, and
// the plan generator uses the cost side of this package while the transport
// uses the byte-level side.
package cryptoact

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"fmt"

	"quasaq/internal/qos"
	"quasaq/internal/simtime"
)

// Algorithm describes one encryption choice.
type Algorithm struct {
	// Name identifies the algorithm in plans and logs.
	Name string
	// Level is the security level the algorithm provides.
	Level qos.SecurityLevel
	// Throughput is the sustainable encryption rate in bytes per second on
	// the testbed CPU class; CPU cost of a stream is bitrate/Throughput.
	Throughput float64
	// rounds is the number of AES-CTR passes applied (0 = plaintext).
	rounds int
}

// Catalog lists the supported algorithms, weakest first. Throughputs are
// calibrated to early-2000s, ~2.4 GHz x86 measurements: stream-cipher XOR
// is nearly free, single AES manages tens of MB/s, and the triple-pass
// "strong" mode costs roughly 3x AES.
func Catalog() []Algorithm {
	return []Algorithm{
		{Name: "xor-stream", Level: qos.SecurityStandard, Throughput: 400e6, rounds: 0},
		{Name: "aes-ctr", Level: qos.SecurityStandard, Throughput: 60e6, rounds: 1},
		{Name: "aes-ctr-x3", Level: qos.SecurityStrong, Throughput: 20e6, rounds: 3},
	}
}

// ForLevel returns the algorithms providing at least the given level
// (none for SecurityNone: an unencrypted stream needs no activity).
func ForLevel(level qos.SecurityLevel) []Algorithm {
	if level == qos.SecurityNone {
		return nil
	}
	var out []Algorithm
	for _, a := range Catalog() {
		if a.Level >= level {
			out = append(out, a)
		}
	}
	return out
}

// CPUCost returns the CPU fraction needed to encrypt a stream of the given
// bitrate (bytes per second) in real time.
func (a Algorithm) CPUCost(bitrate float64) float64 {
	if a.Throughput <= 0 {
		return 0
	}
	return bitrate / a.Throughput
}

// PerFrameService converts CPUCost into per-frame scheduler service time
// for a stream with the given frame rate.
func (a Algorithm) PerFrameService(bitrate, frameRate float64) simtime.Time {
	if frameRate <= 0 {
		return 0
	}
	return simtime.Time(float64(simtime.Seconds(1)) * a.CPUCost(bitrate) / frameRate)
}

// Cipher is a streaming encryptor bound to a key.
type Cipher struct {
	alg     Algorithm
	streams []cipher.Stream
	xorKey  []byte
	xorPos  int
}

// NewCipher derives a cipher for the algorithm from a key of any length.
func NewCipher(a Algorithm, key []byte) (*Cipher, error) {
	sum := sha256.Sum256(key)
	c := &Cipher{alg: a}
	if a.rounds == 0 {
		c.xorKey = sum[:]
		return c, nil
	}
	for i := 0; i < a.rounds; i++ {
		round := sha256.Sum256(append(sum[:], byte(i)))
		block, err := aes.NewCipher(round[:16])
		if err != nil {
			return nil, fmt.Errorf("cryptoact: %w", err)
		}
		iv := sha256.Sum256(append(round[:], 0xA5))
		c.streams = append(c.streams, cipher.NewCTR(block, iv[:16]))
	}
	return c, nil
}

// Algorithm returns the cipher's algorithm descriptor.
func (c *Cipher) Algorithm() Algorithm { return c.alg }

// XORKeyStream encrypts (or, symmetrically, decrypts) src into dst, which
// may alias. The transformation is stateful across calls, matching stream
// delivery.
func (c *Cipher) XORKeyStream(dst, src []byte) {
	if len(dst) < len(src) {
		panic("cryptoact: dst shorter than src")
	}
	if c.xorKey != nil {
		for i, b := range src {
			dst[i] = b ^ c.xorKey[c.xorPos]
			c.xorPos = (c.xorPos + 1) % len(c.xorKey)
		}
		return
	}
	c.streams[0].XORKeyStream(dst, src)
	for _, s := range c.streams[1:] {
		s.XORKeyStream(dst[:len(src)], dst[:len(src)])
	}
}
