package cryptoact

import (
	"bytes"
	"testing"
	"testing/quick"

	"quasaq/internal/qos"
)

func TestCatalogOrderedByStrengthCost(t *testing.T) {
	algs := Catalog()
	if len(algs) != 3 {
		t.Fatalf("catalog size = %d", len(algs))
	}
	for i := 1; i < len(algs); i++ {
		if algs[i].Throughput > algs[i-1].Throughput {
			t.Fatal("catalog not ordered by decreasing throughput")
		}
	}
}

func TestForLevel(t *testing.T) {
	if got := ForLevel(qos.SecurityNone); got != nil {
		t.Fatalf("SecurityNone should need no algorithm, got %v", got)
	}
	std := ForLevel(qos.SecurityStandard)
	if len(std) != 3 {
		t.Fatalf("standard options = %d, want 3", len(std))
	}
	strong := ForLevel(qos.SecurityStrong)
	if len(strong) != 1 || strong[0].Name != "aes-ctr-x3" {
		t.Fatalf("strong options = %v", strong)
	}
}

func TestCPUCost(t *testing.T) {
	aes := Catalog()[1]
	// A 476 KB/s DVD-quality stream through 60 MB/s AES: ~0.8% CPU.
	c := aes.CPUCost(476e3)
	if c < 0.005 || c > 0.02 {
		t.Fatalf("AES cost = %v, want ~0.008", c)
	}
	strong := Catalog()[2]
	if strong.CPUCost(476e3) <= c {
		t.Fatal("strong encryption should cost more CPU")
	}
}

func TestPerFrameService(t *testing.T) {
	aes := Catalog()[1]
	s := aes.PerFrameService(476e3, 23.97)
	if s <= 0 {
		t.Fatalf("per-frame service = %v", s)
	}
	if aes.PerFrameService(476e3, 0) != 0 {
		t.Fatal("zero frame rate should cost zero per frame")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	for _, a := range Catalog() {
		enc, err := NewCipher(a, []byte("secret"))
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		dec, err := NewCipher(a, []byte("secret"))
		if err != nil {
			t.Fatal(err)
		}
		msg := []byte("group of pictures payload 0123456789")
		ct := make([]byte, len(msg))
		enc.XORKeyStream(ct, msg)
		if bytes.Equal(ct, msg) {
			t.Fatalf("%s: ciphertext equals plaintext", a.Name)
		}
		pt := make([]byte, len(ct))
		dec.XORKeyStream(pt, ct)
		if !bytes.Equal(pt, msg) {
			t.Fatalf("%s: round trip failed", a.Name)
		}
	}
}

func TestCipherStatefulAcrossCalls(t *testing.T) {
	a := Catalog()[1]
	enc, _ := NewCipher(a, []byte("k"))
	dec, _ := NewCipher(a, []byte("k"))
	msg := []byte("abcdefghijklmnopqrstuvwxyz012345")
	ct := make([]byte, len(msg))
	// Encrypt in two chunks, decrypt in three: stream state must line up.
	enc.XORKeyStream(ct[:10], msg[:10])
	enc.XORKeyStream(ct[10:], msg[10:])
	pt := make([]byte, len(msg))
	dec.XORKeyStream(pt[:7], ct[:7])
	dec.XORKeyStream(pt[7:20], ct[7:20])
	dec.XORKeyStream(pt[20:], ct[20:])
	if !bytes.Equal(pt, msg) {
		t.Fatal("chunked round trip failed")
	}
}

func TestDifferentKeysDiffer(t *testing.T) {
	a := Catalog()[1]
	c1, _ := NewCipher(a, []byte("k1"))
	c2, _ := NewCipher(a, []byte("k2"))
	msg := make([]byte, 64)
	ct1 := make([]byte, 64)
	ct2 := make([]byte, 64)
	c1.XORKeyStream(ct1, msg)
	c2.XORKeyStream(ct2, msg)
	if bytes.Equal(ct1, ct2) {
		t.Fatal("different keys produced identical ciphertext")
	}
}

func TestRoundTripProperty(t *testing.T) {
	a := Catalog()[2] // triple AES
	if err := quick.Check(func(msg []byte, key []byte) bool {
		enc, err := NewCipher(a, key)
		if err != nil {
			return false
		}
		dec, _ := NewCipher(a, key)
		ct := make([]byte, len(msg))
		enc.XORKeyStream(ct, msg)
		pt := make([]byte, len(ct))
		dec.XORKeyStream(pt, ct)
		return bytes.Equal(pt, msg)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShortDstPanics(t *testing.T) {
	a := Catalog()[0]
	c, _ := NewCipher(a, []byte("k"))
	defer func() {
		if recover() == nil {
			t.Fatal("short dst accepted")
		}
	}()
	c.XORKeyStream(make([]byte, 1), make([]byte, 2))
}
