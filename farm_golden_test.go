package quasaq

import (
	"fmt"
	"testing"
	"time"
)

// goldenFarmWorkload drives a deterministic admission / renegotiation /
// saturation workload and returns the DB's Stats plus every settled
// delivery's outcome and observed QoS, all rendered as strings.
func goldenFarmWorkload(t *testing.T, db *DB) (string, []string) {
	t.Helper()
	reqs := []Requirement{
		{MinResolution: ResVCD, MaxResolution: ResCIF},
		{MinResolution: ResQCIF, MaxResolution: ResVCD, MinFrameRate: 10},
		{MinResolution: ResQCIF, MaxResolution: ResSD, MinColorDepth: 16},
		{MinResolution: ResCIF, MaxResolution: ResDVD, MinFrameRate: 20},
	}
	sites := db.Sites()
	videos := db.Videos()

	var deliveries []*Delivery
	var outcomes []string
	for i := 0; i < 24; i++ {
		site := sites[i%len(sites)]
		id := videos[i%len(videos)].ID
		req := reqs[i%len(reqs)]
		d, err := db.Deliver(site, id, req)
		if err != nil {
			outcomes = append(outcomes, fmt.Sprintf("reject %d: %v", i, err))
		} else {
			deliveries = append(deliveries, d)
		}
		db.Advance(500 * time.Millisecond)
	}

	// A mid-playback renegotiation re-plans the staged DAG.
	if len(deliveries) > 0 {
		db.Advance(3 * time.Second)
		if _, err := db.Renegotiate(deliveries[0], reqs[1]); err != nil {
			outcomes = append(outcomes, fmt.Sprintf("renegotiate: %v", err))
		}
	}

	// Saturation burst with no clock progress, so admission control
	// rejects once the buckets fill.
	for i := 0; i < 16; i++ {
		d, err := db.Deliver(sites[i%len(sites)], videos[i%len(videos)].ID, reqs[3])
		if err != nil {
			outcomes = append(outcomes, fmt.Sprintf("burst reject %d: %v", i, err))
		} else {
			deliveries = append(deliveries, d)
		}
	}
	db.RunUntilIdle()

	for i, d := range deliveries {
		outcomes = append(outcomes, fmt.Sprintf("observed %d: %+v", i, d.Observed()))
	}
	return fmt.Sprintf("%+v", db.Stats()), outcomes
}

// TestNeutralFarmGoldenEquivalence is the staged-DAG acceptance gate: a DB
// with the zero-config transcoding farm (one instant, free worker) must be
// byte-identical to a plain DB on the same workload — same Stats, same
// rejection sequence, same per-delivery observed QoS — even though every
// transcoding session's GOPs route through the farm. The corpus is stored
// single-copy so nearly every delivery carries a transcode stage.
func TestNeutralFarmGoldenEquivalence(t *testing.T) {
	plain := openLoaded(t, Options{SingleCopyReplication: true})
	wantStats, wantOutcomes := goldenFarmWorkload(t, plain)

	farmed := openLoaded(t, Options{SingleCopyReplication: true})
	if err := farmed.EnableTranscodeFarm(FarmConfig{}); err != nil {
		t.Fatal(err)
	}
	gotStats, gotOutcomes := goldenFarmWorkload(t, farmed)

	if gotStats != wantStats {
		t.Errorf("neutral-farm Stats diverged from plain DB:\n got: %s\nwant: %s", gotStats, wantStats)
	}
	if len(gotOutcomes) != len(wantOutcomes) {
		t.Fatalf("outcome count diverged: got %d, want %d", len(gotOutcomes), len(wantOutcomes))
	}
	for i := range wantOutcomes {
		if gotOutcomes[i] != wantOutcomes[i] {
			t.Errorf("outcome %d diverged:\n got: %s\nwant: %s", i, gotOutcomes[i], wantOutcomes[i])
		}
	}

	// The equivalence is only meaningful if the farm actually carried the
	// transcoding work.
	fs := farmed.TranscodeStats()
	if fs.Jobs == 0 || fs.Completed != fs.Jobs {
		t.Fatalf("neutral farm carried no GOP jobs: %+v", fs)
	}
	if fs.DeadlineMiss != 0 || fs.Dollars != 0 {
		t.Fatalf("neutral farm is not free and instant: %+v", fs)
	}
	if plain.TranscodeStats().Jobs != 0 {
		t.Fatal("plain DB reported farm jobs")
	}
}

// TestFarmStatsZeroWithoutFarm pins the no-farm API contract.
func TestFarmStatsZeroWithoutFarm(t *testing.T) {
	db := openLoaded(t, Options{})
	fs := db.TranscodeStats()
	if fs.Jobs != 0 || fs.Completed != 0 || len(fs.PerClass) != 0 {
		t.Fatalf("TranscodeStats without a farm = %+v, want zero value", fs)
	}
	if err := db.EnableTranscodeFarm(FarmConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := db.EnableTranscodeFarm(FarmConfig{}); err == nil {
		t.Fatal("second EnableTranscodeFarm did not error")
	}
}
