package quasaq

import (
	"testing"
	"time"
)

// neverAdmit configures an edge tier whose admission threshold is
// unreachable: the tier observes the workload but never installs a prefix.
func neverAdmit() EdgeConfig {
	return EdgeConfig{MinHits: 1 << 30}
}

func metricTotal(db *DB, name string) float64 {
	var total float64
	for _, s := range db.MetricsSnapshot() {
		if s.Name == name {
			total += s.Value
		}
	}
	return total
}

// TestColdEdgeGoldenEquivalence is the tiered-topology acceptance gate: a DB
// with an edge tier that never caches anything must be byte-identical to a
// plain DB on the golden farm workload — same Stats, same rejection
// sequence, same per-delivery observed QoS. The edge sites exist, their
// brokers are registered, and the observe path runs on every query; none of
// it may perturb planning, admission, or delivery.
func TestColdEdgeGoldenEquivalence(t *testing.T) {
	plain := openLoaded(t, Options{})
	wantStats, wantOutcomes := goldenFarmWorkload(t, plain)

	edged := openLoaded(t, Options{})
	if err := edged.EnableEdgeTier([]EdgeSite{{Name: "edge-a"}, {Name: "edge-b"}}, neverAdmit()); err != nil {
		t.Fatal(err)
	}
	gotStats, gotOutcomes := goldenFarmWorkload(t, edged)

	if gotStats != wantStats {
		t.Errorf("cold-edge Stats diverged from plain DB:\n got: %s\nwant: %s", gotStats, wantStats)
	}
	if len(gotOutcomes) != len(wantOutcomes) {
		t.Fatalf("outcome count diverged: got %d, want %d", len(gotOutcomes), len(wantOutcomes))
	}
	for i := range wantOutcomes {
		if gotOutcomes[i] != wantOutcomes[i] {
			t.Errorf("outcome %d diverged:\n got: %s\nwant: %s", i, gotOutcomes[i], wantOutcomes[i])
		}
	}

	// The equivalence is only meaningful if the tier really watched the
	// workload: every admitted query missed the (empty) cache.
	es := edged.EdgeStats()
	if es.Sites != 2 || es.Misses == 0 {
		t.Fatalf("cold edge tier did not observe the workload: %+v", es)
	}
	if es.Installs != 0 || es.Hits != 0 || es.BytesUsed != 0 {
		t.Fatalf("cold edge tier is not cold: %+v", es)
	}
	if got := len(edged.EdgeSites()); got != 2 {
		t.Fatalf("EdgeSites() = %d sites, want 2", got)
	}
}

// TestEdgeStatsZeroWithoutEdge pins the no-edge API contract.
func TestEdgeStatsZeroWithoutEdge(t *testing.T) {
	db := openLoaded(t, Options{})
	if es := db.EdgeStats(); es != (EdgeStats{}) {
		t.Fatalf("EdgeStats without an edge tier = %+v, want zero value", es)
	}
	if got := db.EdgeSites(); len(got) != 0 {
		t.Fatalf("EdgeSites without an edge tier = %v", got)
	}
	if err := db.EnableEdgeTier([]EdgeSite{{Name: "edge-a"}}, EdgeConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := db.EnableEdgeTier([]EdgeSite{{Name: "edge-b"}}, EdgeConfig{}); err == nil {
		t.Fatal("second EnableEdgeTier did not error")
	}
	if err := openLoaded(t, Options{}).EnableEdgeTier(nil, EdgeConfig{}); err == nil {
		t.Fatal("EnableEdgeTier with no sites did not error")
	}
}

// TestEdgeTierLiveSplitDelivery drives a skewed workload through an
// aggressive edge config and checks the whole pipeline fires: prefixes
// install, split plans win admission, and every split delivery hands over
// to its tail leg and completes.
func TestEdgeTierLiveSplitDelivery(t *testing.T) {
	db := openLoaded(t, Options{})
	cfg := EdgeConfig{MinHits: 1, PrefixGOPs: 4, Interval: time.Second, PromoteHits: 1 << 30}
	if err := db.EnableEdgeTier([]EdgeSite{{Name: "edge-a"}, {Name: "edge-b"}}, cfg); err != nil {
		t.Fatal(err)
	}

	// Pin the top stored tier: the prefix caches the highest-bitrate
	// variant, and a requirement the cheaper tiers cannot satisfy makes the
	// split plan and the plain plan on its tail replica exact cost ties —
	// which the generator breaks toward the edge leg.
	top := Requirement{MinResolution: ResSD}
	var kept []*Delivery
	for round := 0; round < 8; round++ {
		d, err := db.Deliver("srv-a", 1, top)
		if err != nil {
			t.Fatalf("round %d rejected: %v", round, err)
		}
		kept = append(kept, d)
		db.Advance(2 * time.Second)
		// Keep concurrency bounded so admission never rejects.
		if len(kept) > 2 {
			kept[0].Cancel()
			kept = kept[1:]
		}
	}
	for _, d := range kept {
		d.Cancel()
	}

	es := db.EdgeStats()
	if es.Installs == 0 || es.Hits == 0 {
		t.Fatalf("hot video never installed at the edge: %+v", es)
	}
	if splits := metricTotal(db, "quasaq_split_admissions_total"); splits == 0 {
		t.Fatal("no split plan won admission despite a resident prefix")
	}

	// Let one split delivery run to completion: the handover counter must
	// follow the admission counter.
	d, err := db.Deliver("srv-a", 1, top)
	if err != nil {
		t.Fatal(err)
	}
	before := metricTotal(db, "quasaq_handovers_total")
	db.RunUntilIdle()
	if !d.Session.Done() {
		t.Fatal("delivery did not finish")
	}
	if d.Plan.DeliverySite == "edge-a" {
		if got := metricTotal(db, "quasaq_handovers_total"); got <= before {
			t.Fatalf("split delivery finished without a handover (total %v)", got)
		}
	}
}
