package quasaq

import "quasaq/internal/core"

// dbCluster exposes the underlying cluster to integration tests that need
// to drive the internal baseline services against a facade-built database.
func dbCluster(db *DB) *core.Cluster { return db.cluster }
