// Trace: watch the QoS pipeline of every session on one timeline. The
// database is opened with tracing enabled, a handful of deliveries run
// (one of which survives a mid-stream crash via failover), and the trace
// is exported as Chrome trace_event JSON. Load trace.json in
// chrome://tracing or https://ui.perfetto.dev: each site is a process,
// each session a thread, and the rows show content lookup, plan
// enumeration (cache hit/miss), costing, reservation, streaming with GOP
// progress ticks, failover, and teardown in causal order. The metrics
// registry backing DB.Stats is dumped alongside as metrics.json.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"quasaq"
)

func main() {
	db, err := quasaq.Open(quasaq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := db.AddVideos(quasaq.StandardCorpus(42)); err != nil {
		log.Fatal(err)
	}
	db.EnableTracing()
	db.EnableFailover(quasaq.DefaultFailoverPolicy())

	prof := quasaq.DefaultProfile("viewer")
	req := prof.Translate(quasaq.QoP{
		Spatial: quasaq.SpatialVCD, Temporal: quasaq.TemporalStandard, Color: quasaq.ColorBasic,
	})

	// A few sessions across sites; repeats exercise the plan cache so the
	// trace shows both enumeration misses and hits.
	var victim *quasaq.Delivery
	for i := 0; i < 6; i++ {
		site := db.Sites()[i%3]
		d, err := db.Deliver(site, quasaq.VideoID(1+i%4), req)
		if err != nil {
			fmt.Printf("  %s: rejected: %v\n", site, err)
			continue
		}
		if victim == nil {
			victim = d
		}
		db.Advance(2 * time.Second)
	}

	// Crash the first session's delivery site mid-stream: its row in the
	// trace gains a failover span and resumes on an alternate replica.
	crash := victim.Plan.DeliverySite
	fmt.Printf("crashing %s at t=%v\n", crash, db.Now())
	if err := db.CrashSite(crash); err != nil {
		log.Fatal(err)
	}
	db.Advance(30 * time.Second)
	if err := db.RestoreSite(crash); err != nil {
		log.Fatal(err)
	}
	db.RunUntilIdle()

	f, err := os.Create("trace.json")
	if err != nil {
		log.Fatal(err)
	}
	if err := db.TraceExport(f); err != nil {
		log.Fatal(err)
	}
	f.Close()

	m, err := os.Create("metrics.json")
	if err != nil {
		log.Fatal(err)
	}
	if err := db.WriteMetricsJSON(m); err != nil {
		log.Fatal(err)
	}
	m.Close()

	st := db.Stats()
	fmt.Printf("sessions: %d admitted, %d failovers, %.0f frames lost in the gap\n",
		st.Admitted, st.Failovers, st.FramesLostInFailover)
	fmt.Printf("wrote trace.json (%d events) — open it in chrome://tracing or ui.perfetto.dev\n",
		db.TraceEventCount())
	fmt.Println("wrote metrics.json — the registry behind db.Stats()")
}
