// Quickstart: open a QoS-aware multimedia database, run one QoS-enhanced
// query end to end, and watch the chosen plan stream on the virtual clock.
package main

import (
	"fmt"
	"log"
	"time"

	"quasaq"
)

func main() {
	// A three-server cluster with the paper's testbed capacities.
	db, err := quasaq.Open(quasaq.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Ingest the 15-video corpus: catalog insertion, shot/feature
	// extraction, offline replication of the quality ladder to every
	// site, and QoS-profile sampling.
	stored, err := db.AddVideos(quasaq.StandardCorpus(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d videos, %d MB of replicas across %v\n",
		len(db.Videos()), stored>>20, db.Sites())

	// Phase 1+2 in one call: the content part of the query finds the
	// video; the WITH QOS clause drives plan generation, LRB costing,
	// admission and reservation.
	qr, err := db.Query("srv-a",
		"SELECT * FROM videos WHERE title = 'cardiac-mri-patient-007' "+
			"WITH QOS (resolution >= VCD, resolution <= CIF, depth >= 16, fps >= 20)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("content phase matched %d video(s)\n", len(qr.Matches))
	fmt.Printf("chosen plan: %s\n", qr.Delivery.Plan)
	fmt.Printf("delivered quality: %v\n", qr.Delivery.Plan.Delivered)

	// Stream for ten virtual seconds and inspect progress.
	db.Advance(10 * time.Second)
	sess := qr.Delivery.Session
	fmt.Printf("after 10s: %d frames, %.1f KB delivered, mean inter-frame %.2f ms (ideal %.2f)\n",
		sess.FramesDelivered(), float64(sess.BytesDelivered())/1024,
		sess.DelayStats().Mean(), sess.IdealInterFrameMillis())

	// Drain to completion.
	db.RunUntilIdle()
	fmt.Printf("finished at t=%v, QoS ok: %v\n", db.Now(), sess.QoSOK())
	st := db.Stats()
	fmt.Printf("stats: %d queries, %d admitted, %d plans considered\n",
		st.Queries, st.Admitted, st.PlansGenerated)
}
