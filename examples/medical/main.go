// Medical: the paper's motivating scenario (§1). A physician diagnosing a
// patient needs jitter-free, full-quality playback of test footage; a nurse
// organizing the same records does not. Both express themselves in
// qualitative QoP; their user profiles translate to very different QoS
// requirements, and QuaSAQ serves each with a different plan.
package main

import (
	"fmt"
	"log"

	"quasaq"
)

func main() {
	db, err := quasaq.Open(quasaq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := db.AddVideos(quasaq.StandardCorpus(42)); err != nil {
		log.Fatal(err)
	}

	// Content phase: both users find the patient's footage by content.
	matches, err := db.Search("SELECT * FROM videos WHERE tags CONTAINS 'cardiac' SIMILAR TO 'cardiac-mri-patient-007' LIMIT 1")
	if err != nil {
		log.Fatal(err)
	}
	video := matches[0].Video
	fmt.Printf("patient footage: %s (%v, %.4g fps)\n", video.Title, video.Duration, video.FrameRate)

	physician := quasaq.PhysicianProfile()
	nurse := quasaq.NurseProfile()

	// The physician demands the top of every scale.
	physQoP := quasaq.QoP{
		Spatial:  quasaq.SpatialDVD,
		Temporal: quasaq.TemporalSmooth,
		Color:    quasaq.ColorTrue,
		Security: quasaq.SecurityStandard, // patient data leaves the hospital encrypted
	}
	physReq := physician.Translate(physQoP)
	fmt.Printf("\nphysician QoP %v\n  -> QoS requirement: %v\n", physQoP, physReq)
	physDel, err := db.Deliver("srv-a", video.ID, physReq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  -> plan: %s\n", physDel.Plan)

	// The nurse only needs to see what the clip is.
	nurseQoP := quasaq.QoP{
		Spatial:  quasaq.SpatialVCD,
		Temporal: quasaq.TemporalStandard,
		Color:    quasaq.ColorGray,
	}
	nurseReq := nurse.Translate(nurseQoP)
	fmt.Printf("\nnurse QoP %v\n  -> QoS requirement: %v\n", nurseQoP, nurseReq)
	nurseDel, err := db.Deliver("srv-b", video.ID, nurseReq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  -> plan: %s\n", nurseDel.Plan)

	// The two deliveries consume very different resources.
	physNet := physDel.Plan.DeliveryDemand[1]
	nurseNet := nurseDel.Plan.DeliveryDemand[1]
	fmt.Printf("\nbandwidth: physician %.0f KB/s vs nurse %.0f KB/s (%.1fx)\n",
		physNet/1e3, nurseNet/1e3, physNet/nurseNet)

	// Run both to completion; the physician's stream must hold QoS.
	db.RunUntilIdle()
	fmt.Printf("physician playback: mean inter-frame %.2f ms (ideal %.2f), QoS ok: %v\n",
		physDel.Session.DelayStats().Mean(), physDel.Session.IdealInterFrameMillis(),
		physDel.Session.QoSOK())
	fmt.Printf("nurse playback: QoS ok: %v\n", nurseDel.Session.QoSOK())
}
