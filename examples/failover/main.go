// Failover: a server crashes mid-stream and the quality manager recovers.
// The database is opened with failover enabled, a fault schedule crashes
// srv-b while sessions are playing, and the observer shows each recovery:
// streams resumed on an alternate replica from the last delivered frame,
// degraded to best-effort, or rejected with ErrNoViablePlan when nothing
// viable survives.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"quasaq"
)

func main() {
	db, err := quasaq.Open(quasaq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := db.AddVideos(quasaq.StandardCorpus(7)); err != nil {
		log.Fatal(err)
	}

	pol := quasaq.DefaultFailoverPolicy()
	pol.BestEffortFallback = true
	db.EnableFailover(pol)
	db.OnFailover(func(ev quasaq.FailoverEvent) {
		switch {
		case ev.Err != nil:
			fmt.Printf("  [%v] video %d abandoned after %d attempts: %v\n",
				ev.At, ev.Video, ev.Attempts, ev.Err)
		case ev.Degraded:
			fmt.Printf("  [%v] video %d degraded to best-effort on %s (lost %.0f frames)\n",
				ev.At, ev.Video, ev.ToSite, ev.Frames)
		default:
			fmt.Printf("  [%v] video %d failed over %s -> %s in %v (lost %.0f frames)\n",
				ev.At, ev.Video, ev.FromSite, ev.ToSite, ev.Latency, ev.Frames)
		}
	})

	// Start a handful of modest streams; some will land on srv-b.
	req := quasaq.Requirement{MinResolution: quasaq.ResVCD, MinFrameRate: 20, MinColorDepth: 8}
	started := 0
	for i := 0; i < 9; i++ {
		site := db.Sites()[i%3]
		if _, err := db.Deliver(site, quasaq.VideoID(1+i), req); err == nil {
			started++
		}
	}
	fmt.Printf("%d streams playing across %v\n", started, db.Sites())

	// Crash srv-b thirty seconds in; bring it back two minutes later.
	sched, err := quasaq.ParseFaultSchedule(`
		30s  node-crash   srv-b
		150s node-restart srv-b
	`)
	if err != nil {
		log.Fatal(err)
	}
	if err := db.InjectFaults(sched); err != nil {
		log.Fatal(err)
	}

	fmt.Println("crashing srv-b at t=30s:")
	db.Advance(40 * time.Second)
	fmt.Printf("at t=%v srv-b down: %v\n", db.Now(), db.SiteDown("srv-b"))

	// While srv-b is down, new deliveries route around it — and asking
	// srv-b itself yields a typed error.
	if _, err := db.Deliver("srv-b", 12, req); errors.Is(err, quasaq.ErrNodeDown) {
		fmt.Printf("delivery at crashed site rejected: %v\n", err)
	}
	if _, err := db.Deliver("srv-a", 12, req); err == nil {
		fmt.Println("delivery via srv-a still admitted")
	}

	db.RunUntilIdle()
	st := db.Stats()
	fmt.Printf("final: %d admitted, %d session failures, %d failovers, %d best-effort, %d rejects, %.0f frames lost\n",
		st.Admitted, st.SessionFailures, st.Failovers, st.BestEffortFallbacks,
		st.FailoverRejects, st.FramesLostInFailover)
}
