// Renegotiation: the two §3.2 renegotiation scenarios. First, a request is
// rejected by admission control and gets its "second chance": the user
// profile degrades the QoP along the user's preference order until a plan
// is admittable. Second, a user upgrades quality mid-playback and the
// quality manager re-plans the live delivery.
package main

import (
	"fmt"
	"log"
	"time"

	"quasaq"
)

func main() {
	db, err := quasaq.Open(quasaq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := db.AddVideos(quasaq.StandardCorpus(42)); err != nil {
		log.Fatal(err)
	}

	// Fill the cluster with full-quality sessions until DVD-grade
	// admissions start failing.
	top := quasaq.Requirement{MinResolution: quasaq.ResDVD, MinFrameRate: 23, MinColorDepth: 24}
	filled := 0
	for i := 0; ; i++ {
		if _, err := db.Deliver(db.Sites()[i%3], quasaq.VideoID(1+i%15), top); err != nil {
			break
		}
		filled++
	}
	fmt.Printf("cluster saturated with %d full-quality sessions\n", filled)

	// Scenario 1: second chance. The viewer prefers to keep smooth motion
	// and will give up color depth first, then spatial detail.
	prof := quasaq.DefaultProfile("viewer")
	prof.Weights.Temporal = 10
	prof.Weights.Spatial = 5
	prof.Weights.Color = 1
	want := quasaq.QoP{Spatial: quasaq.SpatialDVD, Temporal: quasaq.TemporalSmooth, Color: quasaq.ColorTrue}

	if _, err := db.Deliver("srv-a", 3, prof.Translate(want)); err == nil {
		log.Fatal("expected the full-quality request to be rejected")
	} else {
		fmt.Printf("full-quality request rejected: %v\n", err)
	}
	d, admitted, err := db.DeliverQoP("srv-a", prof, want, 3, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second chance admitted at: %v\n", admitted)
	fmt.Printf("  plan: %s\n", d.Plan)

	// Scenario 2: renegotiation during playback. Play for a while, then
	// capacity frees up and the viewer asks for full quality again.
	db.Advance(10 * time.Second)
	fmt.Printf("at t=%v: %d frames delivered at degraded quality\n",
		db.Now(), d.Session.FramesDelivered())

	// Half the background sessions end early (their viewers hang up).
	// Advance far enough that short videos complete and capacity frees.
	db.Advance(170 * time.Second)
	nd, err := db.Renegotiate(d, prof.Translate(want))
	if err != nil {
		fmt.Printf("renegotiation still rejected at t=%v: %v\n", db.Now(), err)
		fmt.Printf("continuing at: %v\n", nd.Plan.Delivered)
	} else {
		fmt.Printf("renegotiated up at t=%v\n", db.Now())
		fmt.Printf("  new plan: %s\n", nd.Plan)
	}

	db.RunUntilIdle()
	st := db.Stats()
	fmt.Printf("final: %d queries, %d admitted, %d rejected, %d renegotiations\n",
		st.Queries, st.Admitted, st.Rejected, st.Renegotiations)
}
