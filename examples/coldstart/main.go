// Coldstart: dynamic replication from a bare archive. The database begins
// with only original copies (one per video, spread over the sites — no
// quality ladder). As mixed-quality demand arrives, the online replicator
// observes which tiers are wanted, ships replicas over the servers' links,
// and the admission rate climbs toward what offline full replication would
// give. This demonstrates the §2 item 1 mechanism the paper deferred to
// follow-up work.
package main

import (
	"fmt"
	"log"
	"time"

	"quasaq"
)

func main() {
	db, err := quasaq.Open(quasaq.Options{SingleCopyReplication: true})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := db.AddVideos(quasaq.StandardCorpus(42)); err != nil {
		log.Fatal(err)
	}
	db.EnableDynamicReplication(15*time.Second, 4)

	prof := quasaq.DefaultProfile("viewer")
	tiers := []quasaq.QoP{
		{Spatial: quasaq.SpatialDVD, Temporal: quasaq.TemporalSmooth, Color: quasaq.ColorTrue},
		{Spatial: quasaq.SpatialTV, Temporal: quasaq.TemporalStandard, Color: quasaq.ColorTrue},
		{Spatial: quasaq.SpatialVCD, Temporal: quasaq.TemporalStandard, Color: quasaq.ColorBasic},
		{Spatial: quasaq.SpatialLow, Temporal: quasaq.TemporalStandard, Color: quasaq.ColorGray},
	}

	fmt.Println("cold start: single-copy archive, dynamic replication on")
	fmt.Printf("%8s %10s %10s %10s %12s\n", "t", "queries", "admitted", "rejected", "replicas")
	var queries int
	for minute := 0; minute < 10; minute++ {
		// ~30 queries per simulated minute, mixed tiers, mixed sites.
		for i := 0; i < 30; i++ {
			site := db.Sites()[(queries+i)%3]
			id := quasaq.VideoID(1 + (queries+i)%15)
			req := prof.Translate(tiers[(queries+i)%len(tiers)])
			db.Deliver(site, id, req) // rejections expected early on
			db.Advance(2 * time.Second)
		}
		queries += 30
		st := db.Stats()
		fmt.Printf("%8v %10d %10d %10d %12d\n",
			db.Now().Truncate(time.Second), st.Queries, st.Admitted, st.Rejected,
			db.DynamicReplicasCreated())
	}
	st := db.Stats()
	fmt.Printf("\nfinal admission ratio: %.0f%% (replicas materialized: %d)\n",
		100*float64(st.Admitted)/float64(st.Queries), db.DynamicReplicasCreated())
	fmt.Println("compare: a static single-copy archive admits a far smaller share — " +
		"run `go run ./cmd/qsqbench -exp dynamic` for the controlled comparison")
}
