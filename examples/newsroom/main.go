// Newsroom: a load-spike scenario comparing plan cost models. A newsroom
// hits the archive with a burst of mixed-quality requests; the same burst
// is served by a QuaSAQ instance using the LRB model and by one using the
// paper's randomized baseline. LRB's contention-aware choices admit more
// sessions and reject fewer queries (the paper's Figure 7 in miniature).
package main

import (
	"fmt"
	"log"

	"quasaq"
)

func main() {
	reqTiers := []quasaq.Requirement{
		{MinResolution: quasaq.ResDVD, MinFrameRate: 23, MinColorDepth: 24},
		{MinResolution: quasaq.ResCIF, MaxResolution: quasaq.ResSD, MinFrameRate: 20},
		{MinResolution: quasaq.ResVCD, MaxResolution: quasaq.ResCIF, MinFrameRate: 20, MinColorDepth: 16},
	}

	run := func(name string, model quasaq.CostModel) *quasaq.DB {
		db, err := quasaq.Open(quasaq.Options{Model: model})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := db.AddVideos(quasaq.StandardCorpus(42)); err != nil {
			log.Fatal(err)
		}
		// The burst: 90 queries round-robin over sites, videos and tiers,
		// all within one virtual minute.
		admitted := 0
		for i := 0; i < 90; i++ {
			site := db.Sites()[i%3]
			id := quasaq.VideoID(1 + i%15)
			if _, err := db.Deliver(site, id, reqTiers[i%len(reqTiers)]); err == nil {
				admitted++
			}
		}
		st := db.Stats()
		fmt.Printf("%-22s admitted %2d/90, rejected %2d, outstanding %3d\n",
			name, st.Admitted, st.Rejected, st.Outstanding)
		for _, s := range db.Sites() {
			usage, capacity, err := db.SiteUsage(s)
			if err != nil {
				panic(err) // sites come from db.Sites()
			}
			fmt.Printf("  %s: net %5.1f%%  cpu %5.1f%%  disk %5.1f%%\n", s,
				100*usage[1]/capacity[1], 100*usage[0]/capacity[0], 100*usage[2]/capacity[2])
		}
		return db
	}

	fmt.Println("newsroom burst: 90 mixed-quality queries against a 3-server archive")
	lrb := run("LRB (QuaSAQ)", quasaq.ModelLRB)
	random := run("Random baseline", quasaq.NewRandomModel(99))
	minsum := run("Min-sum ablation", quasaq.ModelMinSum)

	// Everything drains; compare end-to-end QoS successes.
	lrb.RunUntilIdle()
	random.RunUntilIdle()
	minsum.RunUntilIdle()
	fmt.Printf("\nLRB admitted %d sessions; random %d; min-sum %d\n",
		lrb.Stats().Admitted, random.Stats().Admitted, minsum.Stats().Admitted)
	if lrb.Stats().Admitted <= random.Stats().Admitted {
		fmt.Println("unexpected: random matched LRB on this burst")
	} else {
		fmt.Println("LRB wins: balanced buckets leave room for more of the burst")
	}
}
