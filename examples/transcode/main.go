// Transcode: enable the elastic transcoding farm and watch delivery plans
// offload their transcode stage onto a heterogeneous worker fleet that
// converts GOPs just-in-time ahead of each stream's play point.
package main

import (
	"fmt"
	"log"
	"time"

	"quasaq"
)

func main() {
	// Single-copy storage: only the original quality of each video exists,
	// so delivering any lower tier forces an online transcode — exactly
	// the work the farm exists to absorb.
	db, err := quasaq.Open(quasaq.Options{SingleCopyReplication: true})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := db.AddVideos(quasaq.StandardCorpus(42)); err != nil {
		log.Fatal(err)
	}

	// A mixed fleet: a fast, expensive class for deadline pressure and a
	// slow, cheap one for background capacity, scaled by the autoscaler
	// every 2 s of virtual time.
	err = db.EnableTranscodeFarm(quasaq.FarmConfig{
		Classes: []quasaq.WorkerClass{
			{Name: "fast", Speed: 4, Startup: quasaq.Time(250 * time.Millisecond),
				DollarsPerHour: 2.4, MaxWorkers: 4},
			{Name: "econ", Speed: 0.5, Startup: quasaq.Time(3 * time.Second),
				DollarsPerHour: 0.3, MinWorkers: 1, MaxWorkers: 6},
		},
		Autoscale: quasaq.AutoscaleConfig{Interval: quasaq.Time(2 * time.Second)},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Ask for a quality below the stored original from every site: each
	// admitted plan carries a transcode stage the planner may offload.
	req := quasaq.Requirement{
		MinResolution: quasaq.ResVCD,
		MaxResolution: quasaq.ResCIF,
		MinFrameRate:  10,
	}
	admitted := 0
	offloaded := 0
	for i, v := range db.Videos() {
		site := db.Sites()[i%len(db.Sites())]
		d, err := db.Deliver(site, v.ID, req)
		if err != nil {
			continue
		}
		admitted++
		if d.Plan.FarmOffloaded() {
			offloaded++
		}
		if i < 3 {
			fmt.Printf("plan %d: %s\n", i, d.Plan)
			for j, st := range d.Plan.Stages {
				fmt.Printf("  stage %d: %-10s site=%-6s work=%.3f cpu-s/s depends=%v\n",
					j, st.Kind, st.Site, st.Work, st.DependsOn)
			}
		}
		db.Advance(2 * time.Second)
	}
	db.RunUntilIdle()

	fs := db.TranscodeStats()
	fmt.Printf("\nadmitted %d deliveries, %d offloaded to the farm\n", admitted, offloaded)
	fmt.Printf("farm: %d GOP jobs, %d deadline misses (%.1f%%), max queue %d\n",
		fs.Jobs, fs.DeadlineMiss, 100*fs.MissRate(), fs.MaxQueueDepth)
	fmt.Printf("autoscaler: %d scale-ups, %d scale-downs, $%.4f billed\n",
		fs.ScaleUps, fs.ScaleDowns, fs.Dollars)
	for _, c := range fs.PerClass {
		fmt.Printf("  class %-5s: %d workers, %.1f busy seconds\n",
			c.Name, c.Workers, c.BusySeconds)
	}
}
