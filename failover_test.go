package quasaq_test

import (
	"errors"
	"testing"
	"time"

	"quasaq"
)

// Public-API failover: open with failover enabled, crash a site
// mid-stream, watch the delivery resume elsewhere.

func TestPublicFailover(t *testing.T) {
	db, err := quasaq.Open(quasaq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddVideos(quasaq.StandardCorpus(7)); err != nil {
		t.Fatal(err)
	}
	db.EnableFailover(quasaq.DefaultFailoverPolicy())
	var events []quasaq.FailoverEvent
	db.OnFailover(func(ev quasaq.FailoverEvent) { events = append(events, ev) })

	req := quasaq.Requirement{MinResolution: quasaq.ResVCD, MinFrameRate: 20, MinColorDepth: 8}
	d, err := db.Deliver("srv-b", 1, req)
	if err != nil {
		t.Fatal(err)
	}
	crashed := d.Plan.DeliverySite

	db.Advance(5 * time.Second)
	if err := db.CrashSite(crashed); err != nil {
		t.Fatal(err)
	}
	if !db.SiteDown(crashed) {
		t.Fatal("SiteDown false after CrashSite")
	}
	if _, err := db.Deliver(crashed, 2, req); !errors.Is(err, quasaq.ErrNodeDown) {
		t.Fatalf("deliver at crashed site: %v, want ErrNodeDown", err)
	}

	db.RunUntilIdle()
	if d.Failovers() != 1 || d.Plan.DeliverySite == crashed {
		t.Fatalf("failovers=%d site=%s", d.Failovers(), d.Plan.DeliverySite)
	}
	if len(events) != 1 || events[0].FromSite != crashed {
		t.Fatalf("events = %+v", events)
	}
	st := db.Stats()
	if st.SessionFailures != 1 || st.Failovers != 1 || st.FramesLostInFailover <= 0 {
		t.Fatalf("stats = %+v", st)
	}

	if err := db.RestoreSite(crashed); err != nil {
		t.Fatal(err)
	}
	if db.SiteDown(crashed) {
		t.Fatal("site still down after restore")
	}
	if _, err := db.Deliver(crashed, 2, req); err != nil {
		t.Fatalf("deliver after restore: %v", err)
	}
	db.RunUntilIdle()
}

func TestPublicFaultScheduleAndLinkFaults(t *testing.T) {
	db, err := quasaq.Open(quasaq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddVideos(quasaq.StandardCorpus(7)); err != nil {
		t.Fatal(err)
	}
	pol := quasaq.DefaultFailoverPolicy()
	pol.BestEffortFallback = true
	db.EnableFailover(pol)

	sched, err := quasaq.ParseFaultSchedule("10s link-degrade srv-a 0.5\n40s link-restore srv-a\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.InjectFaults(sched); err != nil {
		t.Fatal(err)
	}
	req := quasaq.Requirement{MinResolution: quasaq.ResVCD, MinFrameRate: 20, MinColorDepth: 8}
	if _, err := db.Deliver("srv-a", 1, req); err != nil {
		t.Fatal(err)
	}
	db.RunUntilIdle() // must terminate with the schedule drained

	if _, err := quasaq.ParseFaultSchedule("10s explode srv-a"); err == nil {
		t.Fatal("bad schedule accepted")
	}
	if err := db.DegradeLink("srv-c", 0.25); err != nil {
		t.Fatal(err)
	}
	if err := db.RestoreLink("srv-c"); err != nil {
		t.Fatal(err)
	}
	if err := db.CrashSite("nope"); err == nil {
		t.Fatal("unknown site accepted")
	}
}
